#include "scheduler.hh"

#include <algorithm>
#include <limits>
#include <cstdio>

#include "sched/mrt.hh"
#include "sched/reg_pressure.hh"
#include "support/errors.hh"
#include "sched/sched_workspace.hh"
#include "sched/sms_order.hh"
#include "support/logging.hh"
#include "support/math_util.hh"
#include "support/trace.hh"

namespace vliw {

const char *
heuristicName(Heuristic h)
{
    switch (h) {
      case Heuristic::Base: return "BASE";
      case Heuristic::Ibc:  return "IBC";
      case Heuristic::Ipbc: return "IPBC";
    }
    return "?";
}

std::vector<int>
ipbcChainTargets(const MemChains &chains, const ProfileMap &prof,
                 int num_clusters)
{
    std::vector<int> targets(std::size_t(chains.numChains()), 0);
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(num_clusters));
    for (int ch = 0; ch < chains.numChains(); ++ch) {
        std::fill(counts.begin(), counts.end(), 0);
        for (NodeId v : chains.members(ch)) {
            const MemProfile &p = prof.at(v);
            // One width check up front replaces the per-element
            // bound guard the accumulation used to carry.
            vliw_assert(p.clusterCounts.empty() ||
                        p.clusterCounts.size() ==
                            std::size_t(num_clusters),
                        "profile cluster histogram width ",
                        p.clusterCounts.size(), " != cluster count ",
                        num_clusters);
            for (std::size_t c = 0; c < p.clusterCounts.size(); ++c)
                counts[c] += p.clusterCounts[c];
        }
        int best = 0;
        for (int c = 1; c < num_clusters; ++c) {
            if (counts[std::size_t(c)] > counts[std::size_t(best)])
                best = c;
        }
        targets[std::size_t(ch)] = best;
    }
    return targets;
}

namespace {

/**
 * One scheduling attempt at a fixed II.
 *
 * All mutable state lives in the SchedWorkspace so consecutive
 * attempts (and consecutive loops, when the caller reuses the
 * workspace) recycle the same heap storage. The placement loop --
 * place() / tryPlace() / routeCopy() -- allocates nothing once the
 * workspace buffers have reached steady-state capacity.
 */
class Attempt
{
  public:
    Attempt(const Ddg &ddg, const LatencyMap &lat,
            const ProfileMap &prof, const MachineConfig &cfg,
            const SchedulerOptions &opts,
            const std::vector<int> *chain_targets,
            SchedWorkspace &ws, int ii)
        : ddg_(ddg), lat_(lat), prof_(prof), cfg_(cfg), opts_(opts),
          chainsActive_(opts.useChains), ws_(ws), ii_(ii)
    {
        ws_.beginAttempt(ii);
        if (chainsActive_ && chain_targets) {
            // IPBC pre-binds every chain to its target; the
            // binding may still fall back if no slot exists.
            for (std::size_t ch = 0;
                 ch < ws_.chainCluster.size(); ++ch) {
                ws_.chainCluster[ch] = (*chain_targets)[ch];
            }
        }
    }

    bool
    run(const std::vector<NodeId> &order)
    {
        for (NodeId v : order) {
            if (!place(v))
                return false;
        }
        finalize();
        return true;
    }

    /** Materialise the final Schedule (one copy out of the pool). */
    Schedule
    take() const
    {
        Schedule sched;
        sched.ii = ii_;
        sched.length = length_;
        sched.stageCount = stageCount_;
        sched.ops = ws_.ops;
        sched.copies = ws_.copies;
        return sched;
    }

    std::vector<int>
    chainClusterSnapshot() const
    {
        return ws_.chainCluster;
    }

  private:
    /**
     * Candidate clusters for @p v into ws_.cands, most attractive
     * first.
     */
    void
    candidateClusters(NodeId v)
    {
        const bool is_mem = ws_.isMem(v);

        // A chain that is already bound (a member is placed, or the
        // IPBC pre-binding) pins the node; correctness requires the
        // whole chain in one cluster, so the pin is only soft before
        // any member is placed.
        bool pinned_hard = false;
        int pinned = -1;
        if (is_mem && chainsActive_) {
            const int ch = ws_.chainOf(v);
            if (ws_.chainPlaced[std::size_t(ch)]) {
                pinned = ws_.chainCluster[std::size_t(ch)];
                pinned_hard = true;
            } else if (ws_.chainCluster[std::size_t(ch)] >= 0) {
                pinned = ws_.chainCluster[std::size_t(ch)];
            }
        }
        if (pinned_hard) {
            ws_.cands.assign(1, pinned);
            return;
        }

        // Communication profit: placed register-flow neighbours in
        // each cluster (each avoids one copy); then balance.
        ws_.profit.assign(std::size_t(cfg_.numClusters), 0);
        auto credit = [&](NodeId other) {
            if (ws_.ops[std::size_t(other)].placed()) {
                ws_.profit[std::size_t(
                    ws_.ops[std::size_t(other)].cluster)] += 1;
            }
        };
        const RegFlowCsr &csr = ws_.regFlow();
        for (int i = csr.inOff[std::size_t(v)];
             i < csr.inOff[std::size_t(v) + 1]; ++i) {
            credit(csr.in[std::size_t(i)].other);
        }
        for (int i = csr.outOff[std::size_t(v)];
             i < csr.outOff[std::size_t(v) + 1]; ++i) {
            credit(csr.out[std::size_t(i)].other);
        }

        ws_.cands.resize(std::size_t(cfg_.numClusters));
        for (int c = 0; c < cfg_.numClusters; ++c)
            ws_.cands[std::size_t(c)] = c;
        // Stable insertion sort: same order std::stable_sort gives,
        // without its temporary merge buffer (an allocation per
        // placed node on a handful of elements).
        auto before = [&](int a, int b) {
            if (ws_.profit[std::size_t(a)] !=
                ws_.profit[std::size_t(b)]) {
                return ws_.profit[std::size_t(a)] >
                    ws_.profit[std::size_t(b)];
            }
            return ws_.mrt.clusterLoad(a) < ws_.mrt.clusterLoad(b);
        };
        for (std::size_t i = 1; i < ws_.cands.size(); ++i) {
            const int c = ws_.cands[i];
            std::size_t j = i;
            while (j > 0 && before(c, ws_.cands[j - 1])) {
                ws_.cands[j] = ws_.cands[j - 1];
                --j;
            }
            ws_.cands[j] = c;
        }

        // IPBC: the preferred cluster (or soft chain binding) goes
        // first regardless of profit.
        int front = -1;
        if (pinned >= 0) {
            front = pinned;
        } else if (is_mem && opts_.heuristic == Heuristic::Ipbc) {
            front = prof_.at(v).preferredCluster;
        }
        if (front >= 0) {
            auto it = std::find(ws_.cands.begin(), ws_.cands.end(),
                                front);
            if (it != ws_.cands.end()) {
                ws_.cands.erase(it);
                ws_.cands.insert(ws_.cands.begin(), front);
            }
        }
    }

    /**
     * Try to place @p v in @p cluster at @p cycle. On success the
     * reservations are committed and true is returned.
     */
    bool
    tryPlace(NodeId v, FuKind fu, int cluster, int cycle)
    {
        const bool deep = trace_ >= 2;
        if (!ws_.mrt.fuFree(cluster, fu, cycle)) {
            if (deep) {
                std::fprintf(stderr, "  try %s cl=%d t=%d: fu busy\n",
                             ddg_.node(v).name.c_str(), cluster,
                             cycle);
            }
            return false;
        }

        // Copies needed to feed v from remote producers, and to feed
        // remote consumers from v. Window search per transfer.
        ws_.staged.clear();
        auto fail = [&]() {
            for (const StagedCopy &c : ws_.staged)
                ws_.mrt.releaseBus(c.busStart);
            return false;
        };

        ws_.mrt.reserveFu(cluster, fu, cycle);
        auto fail_fu = [&]() {
            fail();
            ws_.mrt.releaseFu(cluster, fu, cycle);
            return false;
        };

        const RegFlowCsr &csr = ws_.regFlow();

        // Producer-side copies (placed RegFlow predecessors).
        for (int i = csr.inOff[std::size_t(v)];
             i < csr.inOff[std::size_t(v) + 1]; ++i) {
            const RegFlowCsr::Arc &a = csr.in[std::size_t(i)];
            const PlacedOp &p = ws_.ops[std::size_t(a.other)];
            if (!p.placed() || p.cluster == cluster)
                continue;
            const int need_by = cycle + ii_ * a.distance;
            const int value_at = p.cycle + lat_(a.other);
            if (!routeCopy(a.other, p.cluster, cluster, value_at,
                           need_by)) {
                if (deep) {
                    std::fprintf(stderr,
                        "  try %s cl=%d t=%d: no route from %s "
                        "[%d, %d]\n", ddg_.node(v).name.c_str(),
                        cluster, cycle,
                        ddg_.node(a.other).name.c_str(), value_at,
                        need_by);
                }
                return fail_fu();
            }
        }

        // Consumer-side copies (placed RegFlow successors).
        const int value_ready = cycle + lat_(v);
        for (int i = csr.outOff[std::size_t(v)];
             i < csr.outOff[std::size_t(v) + 1]; ++i) {
            const RegFlowCsr::Arc &a = csr.out[std::size_t(i)];
            const PlacedOp &s = ws_.ops[std::size_t(a.other)];
            if (!s.placed() || s.cluster == cluster)
                continue;
            const int need_by = s.cycle + ii_ * a.distance;
            if (!routeCopy(v, cluster, s.cluster, value_ready,
                           need_by)) {
                if (deep) {
                    std::fprintf(stderr,
                        "  try %s cl=%d t=%d: no route to %s "
                        "[%d, %d]\n", ddg_.node(v).name.c_str(),
                        cluster, cycle,
                        ddg_.node(a.other).name.c_str(), value_ready,
                        need_by);
                }
                return fail_fu();
            }
        }

        // Commit.
        ws_.ops[std::size_t(v)] = {cycle, cluster};
        for (const StagedCopy &c : ws_.staged) {
            const int ready = c.busStart + cfg_.regBusLatency;
            ws_.copies.push_back(
                {c.producer, c.fromCluster, c.toCluster, c.busStart,
                 ready});
            ws_.noteCopy(copyKey(c.producer, c.toCluster), ready);
        }
        if (chainsActive_ && ws_.isMem(v)) {
            const int ch = ws_.chainOf(v);
            ws_.chainCluster[std::size_t(ch)] = cluster;
            ws_.chainPlaced[std::size_t(ch)] = 1;
        }
        return true;
    }

    std::size_t
    copyKey(NodeId producer, int to_cluster) const
    {
        return std::size_t(producer) *
            std::size_t(cfg_.numClusters) + std::size_t(to_cluster);
    }

    /**
     * Ensure @p producer's value reaches @p to_cluster no later than
     * @p need_by. Reuses an existing copy when possible, otherwise
     * books a bus transfer in [value_at, need_by - busLatency].
     */
    bool
    routeCopy(NodeId producer, int from_cluster, int to_cluster,
              int value_at, int need_by)
    {
        const int bus_lat = cfg_.regBusLatency;

        // An already-committed copy of the same value into the same
        // cluster can be shared if it arrives in time. The earliest
        // ready cycle per (producer, cluster) answers that in O(1).
        if (ws_.copyReady[copyKey(producer, to_cluster)] <= need_by)
            return true;
        // A copy staged within this same tryPlace.
        for (const StagedCopy &c : ws_.staged) {
            if (c.producer == producer &&
                c.toCluster == to_cluster &&
                c.busStart + bus_lat <= need_by) {
                return true;
            }
        }

        // Scanning more than II slots would revisit the same rows,
        // so the search window is min(need_by - busLat, value_at
        // + II).
        const int last = std::min(need_by - bus_lat, value_at + ii_);
        const int start = ws_.mrt.firstFreeBusStart(value_at, last);
        if (start != std::numeric_limits<int>::min()) {
            ws_.mrt.reserveBus(start);
            ws_.staged.push_back(
                {producer, from_cluster, to_cluster, start});
            return true;
        }
        return false;
    }

    /**
     * Earliest/latest start of @p v if placed in @p cluster,
     * including the register-bus latency of any cross-cluster
     * register flow to or from already-placed neighbours.
     */
    struct Window
    {
        int estart = std::numeric_limits<int>::min();
        int lstart = std::numeric_limits<int>::max();
        bool hasPred = false;
        bool hasSucc = false;
    };

    /**
     * Collect every placed neighbour's window contribution for
     * @p v once; windowFor() then evaluates any candidate cluster
     * from the compact lists without re-walking the edges.
     */
    void
    gatherDeps(NodeId v)
    {
        const SchedGraph &graph = ws_.schedGraph();
        ws_.preds.clear();
        ws_.succs.clear();
        for (std::int32_t k = graph.inOff[std::size_t(v)];
             k < graph.inOff[std::size_t(v) + 1]; ++k) {
            const SchedGraph::Arc &a = graph.in[std::size_t(k)];
            const PlacedOp &p = ws_.ops[std::size_t(a.other)];
            if (!p.placed())
                continue;
            ws_.preds.push_back(
                {p.cycle + a.latency - ii_ * a.distance, p.cluster,
                 a.regFlow != 0});
        }
        for (std::int32_t k = graph.outOff[std::size_t(v)];
             k < graph.outOff[std::size_t(v) + 1]; ++k) {
            const SchedGraph::Arc &a = graph.out[std::size_t(k)];
            const PlacedOp &s = ws_.ops[std::size_t(a.other)];
            if (!s.placed())
                continue;
            ws_.succs.push_back(
                {s.cycle - a.latency + ii_ * a.distance, s.cluster,
                 a.regFlow != 0});
        }
    }

    Window
    windowFor(int cluster) const
    {
        Window w;
        w.hasPred = !ws_.preds.empty();
        w.hasSucc = !ws_.succs.empty();
        for (const PlacedDep &d : ws_.preds) {
            const int bound = d.base +
                (d.regFlow && d.cluster != cluster
                     ? cfg_.regBusLatency : 0);
            w.estart = std::max(w.estart, bound);
        }
        for (const PlacedDep &d : ws_.succs) {
            const int bound = d.base -
                (d.regFlow && d.cluster != cluster
                     ? cfg_.regBusLatency : 0);
            w.lstart = std::min(w.lstart, bound);
        }
        return w;
    }

    /** Scheduling window and direction for @p v. */
    bool
    place(NodeId v)
    {
        candidateClusters(v);
        gatherDeps(v);
        const FuKind fu = ws_.fuKindOf(v);
        for (int cluster : ws_.cands) {
            const Window w = windowFor(cluster);

            // Probe the window in direction order: forward from the
            // earliest start when predecessors bound it, backward
            // from the latest start when only successors do.
            int first;
            int last;
            int step = 1;
            if (w.hasPred && w.hasSucc) {
                first = w.estart;
                last = std::min(w.lstart, w.estart + ii_ - 1);
            } else if (w.hasPred) {
                first = w.estart;
                last = w.estart + ii_ - 1;
            } else if (w.hasSucc) {
                first = w.lstart;
                last = w.lstart - ii_ + 1;
                step = -1;
            } else {
                first = 0;
                last = ii_ - 1;
            }

            bool placed_v = false;
            int t = first;
            for (; step > 0 ? t <= last : t >= last; t += step) {
                if (tryPlace(v, fu, cluster, t)) {
                    placed_v = true;
                    break;
                }
            }
            if (placed_v) {
                if (trace_ >= 1) {
                    std::fprintf(stderr,
                        "place %-12s pred=%d succ=%d "
                        "E=%d L=%d -> cyc=%d cl=%d\n",
                        ddg_.node(v).name.c_str(), w.hasPred,
                        w.hasSucc, w.estart, w.lstart, t, cluster);
                }
                return true;
            }
            if (trace_ >= 1) {
                std::fprintf(stderr,
                    "FAIL  %-12s cl=%d pred=%d succ=%d E=%d L=%d "
                    "ii=%d\n", ddg_.node(v).name.c_str(), cluster,
                    w.hasPred, w.hasSucc, w.estart, w.lstart, ii_);
            }
        }
        return false;
    }

    /** Shift so the earliest op sits at cycle 0; derive SC/length. */
    void
    finalize()
    {
        int min_cycle = std::numeric_limits<int>::max();
        int max_cycle = std::numeric_limits<int>::min();
        for (const PlacedOp &op : ws_.ops) {
            min_cycle = std::min(min_cycle, op.cycle);
            max_cycle = std::max(max_cycle, op.cycle);
        }
        for (const CopyOp &c : ws_.copies)
            min_cycle = std::min(min_cycle, c.busStart);

        if (min_cycle != std::numeric_limits<int>::max() &&
            min_cycle != 0) {
            for (PlacedOp &op : ws_.ops)
                op.cycle -= min_cycle;
            for (CopyOp &c : ws_.copies) {
                c.busStart -= min_cycle;
                c.readyCycle -= min_cycle;
            }
            max_cycle -= min_cycle;
        }
        length_ = max_cycle + 1;
        stageCount_ = max_cycle / ii_ + 1;
    }

    const Ddg &ddg_;
    const LatencyMap &lat_;
    const ProfileMap &prof_;
    const MachineConfig &cfg_;
    const SchedulerOptions &opts_;
    const bool chainsActive_;
    SchedWorkspace &ws_;
    const int trace_ = schedTraceLevel();
    int ii_;
    int length_ = 0;
    int stageCount_ = 0;
};

} // namespace

std::optional<ScheduleOutcome>
scheduleLoop(const Ddg &ddg, const std::vector<Circuit> &circuits,
             const LatencyMap &lat, const ProfileMap &prof,
             const MachineConfig &cfg, int mii,
             const SchedulerOptions &opts, SchedWorkspace &ws)
{
    // Everything the II search cannot change -- RegFlow adjacency,
    // recurrence IIs, SMS priority sets, memory chains -- is
    // computed here once; each II retry below only re-runs ordering
    // and placement.
    ws.beginLoop(ddg, circuits, lat, cfg, opts.useChains);

    const std::vector<int> *targets_ptr = nullptr;
    if (opts.useChains && opts.heuristic == Heuristic::Ipbc)
        targets_ptr = &ws.ipbcTargets(prof, cfg.numClusters);

    // The SMS order occasionally leaves a node whose window never
    // opens (no backtracking); after a few failed attempts fall
    // back to the conservative topological order, which guarantees
    // convergence as the II grows.
    constexpr int kSmsAttempts = 6;

    for (int attempt = 0; attempt < opts.maxIiTries; ++attempt) {
        if (opts.cancel &&
            opts.cancel->load(std::memory_order_relaxed)) {
            throw CancelledError("scheduling cancelled in II search");
        }
        const int ii = mii + attempt;
        std::vector<NodeId> topo;
        const std::vector<NodeId> &order = attempt < kSmsAttempts
            ? smsOrder(ws.schedGraph(), ws.orderSets(), ii, ws.sms)
            : (topo = topologicalOrder(ddg, ws.edgeWeights(), ii));
        Attempt run(ddg, lat, prof, cfg, opts, targets_ptr, ws,
                    ii);
        if (!run.run(order))
            continue;

        Schedule sched = run.take();
        if (opts.checkRegPressure &&
            !registerPressureOk(ddg, lat, cfg, sched, ws.regp)) {
            continue;
        }

        ScheduleOutcome out;
        out.schedule = std::move(sched);
        out.attempts = attempt + 1;
        out.chainClusters = run.chainClusterSnapshot();
        return out;
    }
    return std::nullopt;
}

std::optional<ScheduleOutcome>
scheduleLoop(const Ddg &ddg, const std::vector<Circuit> &circuits,
             const LatencyMap &lat, const ProfileMap &prof,
             const MachineConfig &cfg, int mii,
             const SchedulerOptions &opts)
{
    // One workspace per thread: repeated compiles on the same
    // thread (unroll candidates, II escalation, whole sweeps) hit
    // warm buffers without any caller-side plumbing.
    static thread_local SchedWorkspace ws;
    return scheduleLoop(ddg, circuits, lat, prof, cfg, mii, opts,
                        ws);
}

} // namespace vliw
