#include "scheduler.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <cstdio>
#include <cstdlib>

#include "sched/mrt.hh"
#include "sched/reg_pressure.hh"
#include "sched/sms_order.hh"
#include "support/logging.hh"
#include "support/math_util.hh"

namespace vliw {

const char *
heuristicName(Heuristic h)
{
    switch (h) {
      case Heuristic::Base: return "BASE";
      case Heuristic::Ibc:  return "IBC";
      case Heuristic::Ipbc: return "IPBC";
    }
    return "?";
}

std::vector<int>
ipbcChainTargets(const Ddg &ddg, const MemChains &chains,
                 const ProfileMap &prof, int num_clusters)
{
    std::vector<int> targets(std::size_t(chains.numChains()), 0);
    for (int ch = 0; ch < chains.numChains(); ++ch) {
        std::vector<std::uint64_t> counts(
            static_cast<std::size_t>(num_clusters), 0);
        for (NodeId v : chains.members(ch)) {
            const MemProfile &p = prof.at(v);
            for (std::size_t c = 0;
                 c < p.clusterCounts.size() && c < counts.size();
                 ++c) {
                counts[c] += p.clusterCounts[c];
            }
        }
        int best = 0;
        for (int c = 1; c < num_clusters; ++c) {
            if (counts[std::size_t(c)] > counts[std::size_t(best)])
                best = c;
        }
        targets[std::size_t(ch)] = best;
        (void)ddg;
    }
    return targets;
}

namespace {

/** One scheduling attempt at a fixed II. */
class Attempt
{
  public:
    Attempt(const Ddg &ddg, const LatencyMap &lat,
            const ProfileMap &prof, const MachineConfig &cfg,
            const SchedulerOptions &opts, const MemChains *chains,
            const std::vector<int> *chain_targets, int ii)
        : ddg_(ddg), lat_(lat), prof_(prof), cfg_(cfg), opts_(opts),
          chains_(chains), chainTargets_(chain_targets),
          mrt_(cfg, ii), ii_(ii)
    {
        sched_.ii = ii;
        sched_.ops.assign(std::size_t(ddg.numNodes()), PlacedOp{});
        if (chains_) {
            chainCluster_.assign(
                std::size_t(chains_->numChains()), -1);
            if (chainTargets_) {
                // IPBC pre-binds every chain to its target; the
                // binding may still fall back if no slot exists.
                for (std::size_t ch = 0;
                     ch < chainCluster_.size(); ++ch) {
                    chainCluster_[ch] = (*chainTargets_)[ch];
                }
            }
        }
    }

    bool
    run(const std::vector<NodeId> &order)
    {
        for (NodeId v : order) {
            if (!place(v))
                return false;
        }
        finalize();
        return true;
    }

    Schedule take() { return std::move(sched_); }

    std::vector<int>
    chainClusterSnapshot() const
    {
        return chainCluster_;
    }

  private:
    /** Candidate clusters for @p v, most attractive first. */
    std::vector<int>
    candidateClusters(NodeId v) const
    {
        const bool is_mem = ddg_.isMemNode(v);

        // A chain that is already bound (a member is placed, or the
        // IPBC pre-binding) pins the node; correctness requires the
        // whole chain in one cluster, so the pin is only soft before
        // any member is placed.
        bool pinned_hard = false;
        int pinned = -1;
        if (is_mem && chains_ && opts_.useChains) {
            const int ch = chains_->chainOf(v);
            if (chainPlaced_.count(ch)) {
                pinned = chainCluster_[std::size_t(ch)];
                pinned_hard = true;
            } else if (chainCluster_[std::size_t(ch)] >= 0) {
                pinned = chainCluster_[std::size_t(ch)];
            }
        }
        if (pinned_hard)
            return {pinned};

        // Communication profit: placed register-flow neighbours in
        // each cluster (each avoids one copy); then balance.
        std::vector<int> profit(std::size_t(cfg_.numClusters), 0);
        auto credit = [&](NodeId other) {
            if (sched_.ops[std::size_t(other)].placed())
                profit[std::size_t(sched_.clusterOf(other))] += 1;
        };
        for (int eidx : ddg_.inEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            if (e.kind == DepKind::RegFlow)
                credit(e.src);
        }
        for (int eidx : ddg_.outEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            if (e.kind == DepKind::RegFlow)
                credit(e.dst);
        }

        std::vector<int> cands(std::size_t(cfg_.numClusters));
        for (int c = 0; c < cfg_.numClusters; ++c)
            cands[std::size_t(c)] = c;
        std::stable_sort(
            cands.begin(), cands.end(), [&](int a, int b) {
                if (profit[std::size_t(a)] != profit[std::size_t(b)])
                    return profit[std::size_t(a)] >
                        profit[std::size_t(b)];
                return mrt_.clusterLoad(a) < mrt_.clusterLoad(b);
            });

        // IPBC: the preferred cluster (or soft chain binding) goes
        // first regardless of profit.
        int front = -1;
        if (pinned >= 0) {
            front = pinned;
        } else if (is_mem && opts_.heuristic == Heuristic::Ipbc) {
            front = prof_.at(v).preferredCluster;
        }
        if (front >= 0) {
            auto it = std::find(cands.begin(), cands.end(), front);
            if (it != cands.end()) {
                cands.erase(it);
                cands.insert(cands.begin(), front);
            }
        }
        return cands;
    }

    struct NewCopy
    {
        NodeId producer;
        int fromCluster;
        int toCluster;
        int busStart;
    };

    /**
     * Try to place @p v in @p cluster at @p cycle. On success the
     * reservations are committed and true is returned.
     */
    bool
    tryPlace(NodeId v, int cluster, int cycle)
    {
        const char *trace = std::getenv("WIVLIW_SCHED_TRACE");
        const bool deep = trace && trace[0] == '2';
        const FuKind fu = fuForOp(ddg_.node(v).kind);
        if (!mrt_.fuFree(cluster, fu, cycle)) {
            if (deep) {
                std::fprintf(stderr, "  try %s cl=%d t=%d: fu busy\n",
                             ddg_.node(v).name.c_str(), cluster,
                             cycle);
            }
            return false;
        }

        // Copies needed to feed v from remote producers, and to feed
        // remote consumers from v. Window search per transfer.
        std::vector<NewCopy> new_copies;
        auto fail = [&]() {
            for (const NewCopy &c : new_copies)
                mrt_.releaseBus(c.busStart);
            return false;
        };

        mrt_.reserveFu(cluster, fu, cycle);
        auto fail_fu = [&]() {
            fail();
            mrt_.releaseFu(cluster, fu, cycle);
            return false;
        };

        // Producer-side copies (placed RegFlow predecessors).
        for (int eidx : ddg_.inEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            if (e.kind != DepKind::RegFlow)
                continue;
            const PlacedOp &p = sched_.ops[std::size_t(e.src)];
            if (!p.placed() || p.cluster == cluster)
                continue;
            const int need_by = cycle + ii_ * e.distance;
            const int value_at = p.cycle + lat_(e.src);
            if (!routeCopy(e.src, p.cluster, cluster, value_at,
                           need_by, new_copies)) {
                if (deep) {
                    std::fprintf(stderr,
                        "  try %s cl=%d t=%d: no route from %s "
                        "[%d, %d]\n", ddg_.node(v).name.c_str(),
                        cluster, cycle,
                        ddg_.node(e.src).name.c_str(), value_at,
                        need_by);
                }
                return fail_fu();
            }
        }

        // Consumer-side copies (placed RegFlow successors).
        for (int eidx : ddg_.outEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            if (e.kind != DepKind::RegFlow)
                continue;
            const PlacedOp &s = sched_.ops[std::size_t(e.dst)];
            if (!s.placed() || s.cluster == cluster)
                continue;
            const int need_by = s.cycle + ii_ * e.distance;
            const int value_at = cycle + lat_(v);
            if (!routeCopy(v, cluster, s.cluster, value_at, need_by,
                           new_copies)) {
                if (deep) {
                    std::fprintf(stderr,
                        "  try %s cl=%d t=%d: no route to %s "
                        "[%d, %d]\n", ddg_.node(v).name.c_str(),
                        cluster, cycle,
                        ddg_.node(e.dst).name.c_str(), value_at,
                        need_by);
                }
                return fail_fu();
            }
        }

        // Commit.
        sched_.ops[std::size_t(v)] = {cycle, cluster};
        for (const NewCopy &c : new_copies) {
            sched_.copies.push_back(
                {c.producer, c.fromCluster, c.toCluster, c.busStart,
                 c.busStart + cfg_.regBusLatency});
        }
        if (ddg_.isMemNode(v) && chains_ && opts_.useChains) {
            const int ch = chains_->chainOf(v);
            chainCluster_[std::size_t(ch)] = cluster;
            chainPlaced_.insert(ch);
        }
        return true;
    }

    /**
     * Ensure @p producer's value reaches @p to_cluster no later than
     * @p need_by. Reuses an existing copy when possible, otherwise
     * books a bus transfer in [value_at, need_by - busLatency].
     */
    bool
    routeCopy(NodeId producer, int from_cluster, int to_cluster,
              int value_at, int need_by,
              std::vector<NewCopy> &new_copies)
    {
        const int bus_lat = cfg_.regBusLatency;

        // An already-committed copy of the same value into the same
        // cluster can be shared if it arrives in time.
        for (const CopyOp &c : sched_.copies) {
            if (c.producer == producer && c.toCluster == to_cluster &&
                c.readyCycle <= need_by) {
                return true;
            }
        }
        // A copy staged within this same tryPlace.
        for (const NewCopy &c : new_copies) {
            if (c.producer == producer && c.toCluster == to_cluster &&
                c.busStart + bus_lat <= need_by) {
                return true;
            }
        }

        for (int start = value_at; start + bus_lat <= need_by;
             ++start) {
            if (mrt_.busFree(start)) {
                mrt_.reserveBus(start);
                new_copies.push_back(
                    {producer, from_cluster, to_cluster, start});
                return true;
            }
            // Scanning more than II slots revisits the same rows.
            if (start - value_at >= ii_)
                break;
        }
        return false;
    }

    /**
     * Earliest/latest start of @p v if placed in @p cluster,
     * including the register-bus latency of any cross-cluster
     * register flow to or from already-placed neighbours.
     */
    struct Window
    {
        int estart = std::numeric_limits<int>::min();
        int lstart = std::numeric_limits<int>::max();
        bool hasPred = false;
        bool hasSucc = false;
    };

    Window
    windowFor(NodeId v, int cluster) const
    {
        Window w;
        for (int eidx : ddg_.inEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            const PlacedOp &p = sched_.ops[std::size_t(e.src)];
            if (!p.placed())
                continue;
            w.hasPred = true;
            int lat_e = edgeLatency(ddg_, e, lat_);
            if (e.kind == DepKind::RegFlow && p.cluster != cluster)
                lat_e += cfg_.regBusLatency;
            w.estart = std::max(w.estart,
                                p.cycle + lat_e - ii_ * e.distance);
        }
        for (int eidx : ddg_.outEdges(v)) {
            const DdgEdge &e = ddg_.edge(eidx);
            const PlacedOp &s = sched_.ops[std::size_t(e.dst)];
            if (!s.placed())
                continue;
            w.hasSucc = true;
            int lat_e = edgeLatency(ddg_, e, lat_);
            if (e.kind == DepKind::RegFlow && s.cluster != cluster)
                lat_e += cfg_.regBusLatency;
            w.lstart = std::min(w.lstart,
                                s.cycle - lat_e + ii_ * e.distance);
        }
        return w;
    }

    /** Scheduling window and direction for @p v. */
    bool
    place(NodeId v)
    {
        for (int cluster : candidateClusters(v)) {
            const Window w = windowFor(v, cluster);

            std::vector<int> cycles;
            cycles.reserve(std::size_t(ii_));
            if (w.hasPred && w.hasSucc) {
                for (int t = w.estart;
                     t <= std::min(w.lstart, w.estart + ii_ - 1);
                     ++t) {
                    cycles.push_back(t);
                }
            } else if (w.hasPred) {
                for (int t = w.estart; t <= w.estart + ii_ - 1; ++t)
                    cycles.push_back(t);
            } else if (w.hasSucc) {
                for (int t = w.lstart; t >= w.lstart - ii_ + 1; --t)
                    cycles.push_back(t);
            } else {
                for (int t = 0; t < ii_; ++t)
                    cycles.push_back(t);
            }

            for (int t : cycles) {
                if (tryPlace(v, cluster, t)) {
                    if (std::getenv("WIVLIW_SCHED_TRACE")) {
                        std::fprintf(stderr,
                            "place %-12s pred=%d succ=%d "
                            "E=%d L=%d -> cyc=%d cl=%d\n",
                            ddg_.node(v).name.c_str(), w.hasPred,
                            w.hasSucc, w.estart, w.lstart, t,
                            cluster);
                    }
                    return true;
                }
            }
            if (std::getenv("WIVLIW_SCHED_TRACE")) {
                std::fprintf(stderr,
                    "FAIL  %-12s cl=%d pred=%d succ=%d E=%d L=%d "
                    "ii=%d\n", ddg_.node(v).name.c_str(), cluster,
                    w.hasPred, w.hasSucc, w.estart, w.lstart, ii_);
            }
        }
        return false;
    }

    /** Shift so the earliest op sits at cycle 0; derive SC/length. */
    void
    finalize()
    {
        int min_cycle = std::numeric_limits<int>::max();
        int max_cycle = std::numeric_limits<int>::min();
        for (const PlacedOp &op : sched_.ops) {
            min_cycle = std::min(min_cycle, op.cycle);
            max_cycle = std::max(max_cycle, op.cycle);
        }
        for (const CopyOp &c : sched_.copies)
            min_cycle = std::min(min_cycle, c.busStart);

        if (min_cycle != std::numeric_limits<int>::max() &&
            min_cycle != 0) {
            for (PlacedOp &op : sched_.ops)
                op.cycle -= min_cycle;
            for (CopyOp &c : sched_.copies) {
                c.busStart -= min_cycle;
                c.readyCycle -= min_cycle;
            }
            max_cycle -= min_cycle;
        }
        sched_.length = max_cycle + 1;
        sched_.stageCount = max_cycle / sched_.ii + 1;
    }

    const Ddg &ddg_;
    const LatencyMap &lat_;
    const ProfileMap &prof_;
    const MachineConfig &cfg_;
    const SchedulerOptions &opts_;
    const MemChains *chains_;
    const std::vector<int> *chainTargets_;
    Mrt mrt_;
    int ii_;
    Schedule sched_;
    std::vector<int> chainCluster_;
    std::set<int> chainPlaced_;
};

} // namespace

std::optional<ScheduleOutcome>
scheduleLoop(const Ddg &ddg, const std::vector<Circuit> &circuits,
             const LatencyMap &lat, const ProfileMap &prof,
             const MachineConfig &cfg, int mii,
             const SchedulerOptions &opts)
{
    std::optional<MemChains> chains;
    std::vector<int> chain_targets;
    const MemChains *chains_ptr = nullptr;
    const std::vector<int> *targets_ptr = nullptr;

    if (opts.useChains) {
        chains.emplace(ddg);
        chains_ptr = &*chains;
        if (opts.heuristic == Heuristic::Ipbc) {
            chain_targets = ipbcChainTargets(ddg, *chains, prof,
                                             cfg.numClusters);
            targets_ptr = &chain_targets;
        }
    }

    // The SMS order occasionally leaves a node whose window never
    // opens (no backtracking); after a few failed attempts fall
    // back to the conservative topological order, which guarantees
    // convergence as the II grows.
    constexpr int kSmsAttempts = 6;

    for (int attempt = 0; attempt < opts.maxIiTries; ++attempt) {
        const int ii = mii + attempt;
        const std::vector<NodeId> order = attempt < kSmsAttempts
            ? smsOrder(ddg, circuits, lat, ii)
            : topologicalOrder(ddg, lat, ii);
        Attempt run(ddg, lat, prof, cfg, opts, chains_ptr,
                    targets_ptr, ii);
        if (!run.run(order))
            continue;

        Schedule sched = run.take();
        if (opts.checkRegPressure &&
            !registerPressureOk(ddg, lat, cfg, sched)) {
            continue;
        }

        ScheduleOutcome out;
        out.schedule = std::move(sched);
        out.attempts = attempt + 1;
        out.chainClusters = run.chainClusterSnapshot();
        return out;
    }
    return std::nullopt;
}

} // namespace vliw
