/**
 * @file
 * Reusable scratch state for the modulo-scheduling kernel.
 *
 * The scheduler retries a loop at growing IIs, and each attempt
 * places every node through a tight probe loop (candidate clusters,
 * cycle windows, copy routing). A SchedWorkspace keeps two kinds of
 * state out of that loop:
 *
 *  - II-invariant analysis, built once per scheduleLoop() call:
 *    the RegFlow-only CSR adjacency, the circuits' recurrence IIs,
 *    and the SMS priority sets. II retries reuse them untouched.
 *
 *  - scratch buffers (candidate lists, profit counts, cycle
 *    windows, staged copies, the MRT, the growing schedule), reset
 *    with assign()/clear() per attempt so their heap storage is
 *    reused across nodes, attempts, II values -- and, when the
 *    workspace itself is reused, across loops. After warm-up the
 *    steady-state placement path performs no heap allocation.
 *
 * A workspace may be reused freely across loops, machines and
 * heuristics; it is not thread-safe, so use one per thread.
 */

#ifndef WIVLIW_SCHED_SCHED_WORKSPACE_HH
#define WIVLIW_SCHED_SCHED_WORKSPACE_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "ddg/circuits.hh"
#include "ddg/ddg.hh"
#include "sched/mrt.hh"
#include "sched/reg_pressure.hh"
#include "sched/schedule.hh"
#include "sched/sms_order.hh"
#include "sched/time_frames.hh"
#include "support/logging.hh"
#include "support/math_util.hh"

namespace vliw {

/** A copy staged within one placement probe, not yet committed. */
struct StagedCopy
{
    NodeId producer;
    int fromCluster;
    int toCluster;
    int busStart;
};

/**
 * One placed neighbour's window contribution, gathered once per
 * node so probing every candidate cluster re-reads three ints
 * instead of re-walking edge records and placements.
 */
struct PlacedDep
{
    /** Window bound before any cross-cluster bus latency. */
    int base;
    /** Cluster the neighbour is placed in. */
    int cluster;
    /** RegFlow edges pay the bus latency across clusters. */
    bool regFlow;
};

class SchedWorkspace
{
  public:
    /** No committed copy yet for a (producer, cluster) slot. */
    static constexpr int kNoCopy = std::numeric_limits<int>::max();

    SchedWorkspace() = default;
    SchedWorkspace(const SchedWorkspace &) = delete;
    SchedWorkspace &operator=(const SchedWorkspace &) = delete;

    /**
     * Build the II-invariant analysis for one loop. When
     * @p build_chains is set, the memory dependent chains are
     * derived here too (same numbering as MemChains: chains appear
     * in order of their first member's node id).
     */
    void
    beginLoop(const Ddg &ddg, const std::vector<Circuit> &circuits,
              const LatencyMap &lat, const MachineConfig &cfg,
              bool build_chains)
    {
        ddg_ = &ddg;
        cfg_ = &cfg;
        if (build_chains)
            buildChains(ddg);
        else
            numChains_ = 0;
        edgeWeights_.build(ddg, lat);
        buildIndexes(ddg);
        // recurrenceIis() re-derives every edge latency; summing
        // the freshly built weights gives the same integers from a
        // flat array.
        circuitIis_.resize(circuits.size());
        for (std::size_t i = 0; i < circuits.size(); ++i) {
            const Circuit &c = circuits[i];
            vliw_assert(c.totalDistance > 0,
                        "circuit with zero distance");
            int sum = 0;
            for (int e : c.edgeIdxs)
                sum += edgeWeights_.latency[std::size_t(e)];
            circuitIis_[i] =
                int(ceilDiv(sum, c.totalDistance));
        }
        buildOrderSets(ddg, circuits, circuitIis_, orderSets_,
                       orderScratch_);
        copyReady.assign(std::size_t(ddg.numNodes()) *
                         std::size_t(cfg.numClusters), kNoCopy);
        copyTouched_.clear();
    }

    /** Clear all per-attempt state for a fresh try at @p ii. */
    void
    beginAttempt(int ii)
    {
        mrt.reset(*cfg_, ii);
        ops.assign(std::size_t(ddg_->numNodes()), PlacedOp{});
        copies.clear();
        // Only the slots the previous attempt committed need a
        // reset; the full array was initialised in beginLoop().
        for (std::size_t key : copyTouched_)
            copyReady[key] = kNoCopy;
        copyTouched_.clear();
        chainCluster.assign(std::size_t(numChains_), -1);
        chainPlaced.assign(std::size_t(numChains_), 0);
    }

    /** Record a committed copy's earliest ready cycle. */
    void
    noteCopy(std::size_t key, int ready)
    {
        int &slot = copyReady[key];
        if (slot == kNoCopy)
            copyTouched_.push_back(key);
        slot = std::min(slot, ready);
    }

    const RegFlowCsr &regFlow() const { return regFlow_; }
    const EdgeWeights &edgeWeights() const { return edgeWeights_; }
    const SchedGraph &schedGraph() const { return schedGraph_; }

    FuKind
    fuKindOf(NodeId v) const
    {
        return FuKind(fuKind_[std::size_t(v)]);
    }

    bool isMem(NodeId v) const { return isMem_[std::size_t(v)] != 0; }

    /** Chain index of a memory node; -1 for non-memory nodes. */
    int chainOf(NodeId v) const { return chainOf_[std::size_t(v)]; }

    int numChains() const { return numChains_; }

    /**
     * IPBC chain targets over the workspace chains: the mirror of
     * ipbcChainTargets() (scheduler.hh) without its per-call
     * allocations. Result lives in chainTargets until the next
     * call.
     */
    const std::vector<int> &
    ipbcTargets(const ProfileMap &prof, int num_clusters)
    {
        targetCounts_.assign(
            std::size_t(numChains_) * std::size_t(num_clusters), 0);
        for (NodeId v = 0; v < ddg_->numNodes(); ++v) {
            const int ch = chainOf_[std::size_t(v)];
            if (ch < 0)
                continue;
            const MemProfile &p = prof.at(v);
            vliw_assert(p.clusterCounts.empty() ||
                        p.clusterCounts.size() ==
                            std::size_t(num_clusters),
                        "profile cluster histogram width ",
                        p.clusterCounts.size(),
                        " != cluster count ", num_clusters);
            std::uint64_t *counts = targetCounts_.data() +
                std::size_t(ch) * std::size_t(num_clusters);
            for (std::size_t c = 0; c < p.clusterCounts.size(); ++c)
                counts[c] += p.clusterCounts[c];
        }
        chainTargets.assign(std::size_t(numChains_), 0);
        for (int ch = 0; ch < numChains_; ++ch) {
            const std::uint64_t *counts = targetCounts_.data() +
                std::size_t(ch) * std::size_t(num_clusters);
            int best = 0;
            for (int c = 1; c < num_clusters; ++c) {
                if (counts[c] > counts[best])
                    best = c;
            }
            chainTargets[std::size_t(ch)] = best;
        }
        return chainTargets;
    }

    /** IPBC pre-binding (filled by ipbcTargets()). */
    std::vector<int> chainTargets;
    const OrderSets &orderSets() const { return orderSets_; }
    const std::vector<int> &circuitIis() const { return circuitIis_; }

    // ---- per-attempt state (owned here so capacity survives) ----

    Mrt mrt;
    /** Placements under construction, indexed by NodeId. */
    std::vector<PlacedOp> ops;
    /** Committed inter-cluster copies, in commit order. */
    std::vector<CopyOp> copies;
    /**
     * Earliest ready cycle of a committed copy, indexed
     * [producer * numClusters + toCluster]; kNoCopy when none. This
     * is the O(1) replacement for scanning `copies` per RegFlow
     * edge in copy routing.
     */
    std::vector<int> copyReady;
    /** Chain index -> bound cluster (-1 unbound). */
    std::vector<int> chainCluster;
    /** Flat bitmap: chain has a placed member (hard pin). */
    std::vector<std::uint8_t> chainPlaced;

    // ---- probe-local scratch, clear()ed at each use site ----

    std::vector<int> profit;
    std::vector<int> cands;
    std::vector<StagedCopy> staged;
    std::vector<PlacedDep> preds;
    std::vector<PlacedDep> succs;
    /** Ordering scratch (time frames + sweep worklists). */
    SmsScratch sms;
    /** MaxLive scratch for the accept-path pressure check. */
    RegPressureScratch regp;

  private:
    /** Adjacency indexes plus the flattened node attributes. */
    void
    buildIndexes(const Ddg &ddg)
    {
        regFlow_.build(ddg);
        schedGraph_.build(ddg, edgeWeights_);
        fuKind_.resize(std::size_t(ddg.numNodes()));
        isMem_.resize(std::size_t(ddg.numNodes()));
        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            fuKind_[std::size_t(v)] =
                std::uint8_t(fuForOp(ddg.node(v).kind));
            isMem_[std::size_t(v)] = ddg.isMemNode(v) ? 1 : 0;
        }
    }

    /** Union-find over memory dependences (MemChains numbering). */
    void
    buildChains(const Ddg &ddg)
    {
        const int n = ddg.numNodes();
        ufParent_.resize(std::size_t(n));
        for (int v = 0; v < n; ++v)
            ufParent_[std::size_t(v)] = v;
        auto find = [&](int x) {
            while (ufParent_[std::size_t(x)] != x) {
                ufParent_[std::size_t(x)] =
                    ufParent_[std::size_t(ufParent_[std::size_t(x)])];
                x = ufParent_[std::size_t(x)];
            }
            return x;
        };
        for (const DdgEdge &e : ddg.edges()) {
            if (!isMemDep(e.kind))
                continue;
            const int a = find(e.src);
            const int b = find(e.dst);
            if (a != b)
                ufParent_[std::size_t(a)] = b;
        }
        chainOf_.assign(std::size_t(n), -1);
        rootChain_.assign(std::size_t(n), -1);
        numChains_ = 0;
        for (NodeId v = 0; v < n; ++v) {
            if (!ddg.isMemNode(v))
                continue;
            const int root = find(v);
            int &chain = rootChain_[std::size_t(root)];
            if (chain < 0)
                chain = numChains_++;
            chainOf_[std::size_t(v)] = chain;
        }
    }

    RegFlowCsr regFlow_;
    EdgeWeights edgeWeights_;
    SchedGraph schedGraph_;
    OrderSets orderSets_;
    OrderSetsScratch orderScratch_;
    std::vector<int> circuitIis_;
    std::vector<std::uint8_t> fuKind_;
    std::vector<std::uint8_t> isMem_;
    std::vector<int> ufParent_;
    std::vector<int> rootChain_;
    std::vector<int> chainOf_;
    std::vector<std::uint64_t> targetCounts_;
    std::vector<std::size_t> copyTouched_;
    const Ddg *ddg_ = nullptr;
    const MachineConfig *cfg_ = nullptr;
    int numChains_ = 0;
};

} // namespace vliw

#endif // WIVLIW_SCHED_SCHED_WORKSPACE_HH
