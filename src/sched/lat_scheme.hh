/**
 * @file
 * Latency classes a memory instruction can be scheduled with.
 *
 * The interleaved cache has four classes (local/remote x hit/miss,
 * Section 4.3.1 step 2); the unified cache and the multiVLIW use the
 * classic two (hit/miss). The scheme also evaluates the probability
 * that a dynamic access falls into each class, and from that the
 * expected stall time of scheduling an instruction with a given
 * latency -- the denominator of the paper's benefit function.
 */

#ifndef WIVLIW_SCHED_LAT_SCHEME_HH
#define WIVLIW_SCHED_LAT_SCHEME_HH

#include <string>
#include <vector>

#include "ddg/mem_info.hh"
#include "machine/machine_config.hh"

namespace vliw {

/** Index into LatencyScheme::classLatency, ascending latencies. */
using LatClass = int;

/** Ordered set of assignable latencies plus the stall estimator. */
class LatencyScheme
{
  public:
    /** Four classes: LH < RH < LM < RM (interleaved cache). */
    static LatencyScheme fourClass(const MachineConfig &cfg);

    /** Two classes: hit < miss (unified cache). */
    static LatencyScheme twoClassUnified(const MachineConfig &cfg);

    /** Two classes: hit < miss (multiVLIW private caches). */
    static LatencyScheme twoClassCoherent(const MachineConfig &cfg);

    int numClasses() const { return int(latencies_.size()); }
    int classLatency(LatClass cls) const;
    const std::string &className(LatClass cls) const;

    LatClass worstClass() const { return numClasses() - 1; }
    LatClass bestClass() const { return 0; }

    /**
     * Probability that one dynamic execution of an instruction with
     * profile @p prof falls into each class. Four-class schemes use
     * hit rate x local ratio; two-class schemes use the hit rate.
     */
    std::vector<double> classProbabilities(const MemProfile &prof) const;

    /**
     * Expected stall cycles per execution when the instruction is
     * scheduled with latency @p scheduled_lat:
     * sum_t p_t * max(0, latency_t - scheduled_lat).
     *
     * The paper omits its exact formula "due to lack of space"; this
     * reconstruction reproduces the Section 4.3.3 worked example
     * (see DESIGN.md section 3).
     */
    double expectedStall(const MemProfile &prof,
                         int scheduled_lat) const;

  private:
    LatencyScheme(std::vector<int> lats, std::vector<std::string> names,
                  bool four_class);

    std::vector<int> latencies_;
    std::vector<std::string> names_;
    bool fourClass_;
};

} // namespace vliw

#endif // WIVLIW_SCHED_LAT_SCHEME_HH
