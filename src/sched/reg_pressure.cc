#include "reg_pressure.hh"

#include <algorithm>

#include "support/math_util.hh"

namespace vliw {

std::vector<int>
maxLivePerCluster(const Ddg &ddg, const LatencyMap &lat,
                  const MachineConfig &cfg, const Schedule &sched)
{
    RegPressureScratch scratch;
    return maxLivePerCluster(ddg, lat, cfg, sched, scratch);
}

const std::vector<int> &
maxLivePerCluster(const Ddg &ddg, const LatencyMap &lat,
                  const MachineConfig &cfg, const Schedule &sched,
                  RegPressureScratch &s)
{
    // Lifetimes start at issue (not at write-back), so the assigned
    // latencies in @p lat do not shift the intervals.
    (void)lat;
    using Interval = RegPressureScratch::Interval;
    std::vector<Interval> &intervals = s.intervals;
    intervals.clear();
    std::vector<std::pair<int, int>> &remote_uses = s.remoteUses;

    // Bucket the copies by producer so the per-node pass below
    // walks each node's own copies instead of the whole list.
    const int n = ddg.numNodes();
    s.copyOff.assign(std::size_t(n) + 1, 0);
    for (const CopyOp &c : sched.copies)
        s.copyOff[std::size_t(c.producer) + 1] += 1;
    for (int v = 0; v < n; ++v)
        s.copyOff[std::size_t(v) + 1] += s.copyOff[std::size_t(v)];
    s.copyIdx.resize(sched.copies.size());
    {
        std::vector<int> &cursor = s.maxLive;   // reused as scratch
        cursor.assign(std::size_t(n), 0);
        for (std::size_t i = 0; i < sched.copies.size(); ++i) {
            const auto p = std::size_t(sched.copies[i].producer);
            s.copyIdx[std::size_t(s.copyOff[p]) +
                      std::size_t(cursor[p]++)] = int(i);
        }
    }

    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        if (ddg.node(v).kind == OpKind::Store)
            continue;   // stores define no register
        const int def_cluster = sched.clusterOf(v);
        const int def = sched.cycleOf(v);

        int end_home = def;         // last use in the home cluster
        remote_uses.clear();

        for (int eidx : ddg.outEdges(v)) {
            const DdgEdge &e = ddg.edge(eidx);
            if (e.kind != DepKind::RegFlow)
                continue;
            const int use_cluster = sched.clusterOf(e.dst);
            const int use_time =
                sched.cycleOf(e.dst) + sched.ii * e.distance;
            if (use_cluster == def_cluster) {
                end_home = std::max(end_home, use_time);
            } else {
                remote_uses.emplace_back(use_cluster, use_time);
            }
        }

        // Copies: the source register lives until the transfer
        // leaves; the replica lives from arrival to its last use.
        for (int k = s.copyOff[std::size_t(v)];
             k < s.copyOff[std::size_t(v) + 1]; ++k) {
            const CopyOp &c =
                sched.copies[std::size_t(s.copyIdx[std::size_t(k)])];
            end_home = std::max(end_home, c.busStart);
            int replica_end = c.readyCycle;
            for (const auto &[use_cluster, use_time] : remote_uses) {
                if (use_cluster == c.toCluster)
                    replica_end = std::max(replica_end, use_time);
            }
            intervals.push_back(
                {c.toCluster, c.readyCycle, replica_end});
        }

        intervals.push_back({def_cluster, def, end_home});
    }

    // An interval spanning `span` cycles overlaps every modulo row
    // floor(span / ii) times, plus once more for the span % ii rows
    // starting at its definition row. Two range increments on a
    // per-cluster difference array replace the per-(cluster, row,
    // interval) divisions the naive count would do.
    const int ii = sched.ii;
    const std::size_t rows = std::size_t(ii);
    s.wraps.assign(std::size_t(cfg.numClusters), 0);
    s.diff.assign(std::size_t(cfg.numClusters) * (rows + 1), 0);
    for (const Interval &iv : intervals) {
        if (iv.end < iv.def)
            continue;
        const int span = iv.end - iv.def + 1;
        s.wraps[std::size_t(iv.cluster)] += span / ii;
        const int rem = span % ii;
        if (rem == 0)
            continue;
        int *d = s.diff.data() +
            std::size_t(iv.cluster) * (rows + 1);
        const int start = int(positiveMod(iv.def, ii));
        if (start + rem <= ii) {
            d[start] += 1;
            d[start + rem] -= 1;
        } else {
            d[start] += 1;
            d[ii] -= 1;
            d[0] += 1;
            d[start + rem - ii] -= 1;
        }
    }

    s.maxLive.assign(std::size_t(cfg.numClusters), 0);
    for (int c = 0; c < cfg.numClusters; ++c) {
        const int *d = s.diff.data() + std::size_t(c) * (rows + 1);
        int partial = 0;
        int best = 0;
        for (int r = 0; r < ii; ++r) {
            partial += d[r];
            best = std::max(best, partial);
        }
        s.maxLive[std::size_t(c)] = s.wraps[std::size_t(c)] + best;
    }
    return s.maxLive;
}

bool
registerPressureOk(const Ddg &ddg, const LatencyMap &lat,
                   const MachineConfig &cfg, const Schedule &sched)
{
    RegPressureScratch scratch;
    return registerPressureOk(ddg, lat, cfg, sched, scratch);
}

bool
registerPressureOk(const Ddg &ddg, const LatencyMap &lat,
                   const MachineConfig &cfg, const Schedule &sched,
                   RegPressureScratch &scratch)
{
    for (int live :
         maxLivePerCluster(ddg, lat, cfg, sched, scratch)) {
        if (live > cfg.regsPerCluster)
            return false;
    }
    return true;
}

} // namespace vliw
