#include "reg_pressure.hh"

#include <algorithm>

#include "support/math_util.hh"

namespace vliw {

namespace {

/** Live interval [def, lastUse] in absolute schedule cycles. */
struct Interval
{
    int cluster;
    int def;
    int end;
};

/** Instances of [def,end] alive at modulo row r with period ii. */
int
aliveAtRow(const Interval &iv, int r, int ii)
{
    if (iv.end < iv.def)
        return 0;
    // Count k with def <= r + k*ii <= end.
    const auto lo = std::int64_t(iv.def) - r;
    const auto hi = std::int64_t(iv.end) - r;
    const std::int64_t k_min =
        lo <= 0 ? -((-lo) / ii) : (lo + ii - 1) / ii;
    const std::int64_t k_max =
        hi >= 0 ? hi / ii : -((-hi + ii - 1) / ii);
    return k_max >= k_min ? int(k_max - k_min + 1) : 0;
}

} // namespace

std::vector<int>
maxLivePerCluster(const Ddg &ddg, const LatencyMap &lat,
                  const MachineConfig &cfg, const Schedule &sched)
{
    // Lifetimes start at issue (not at write-back), so the assigned
    // latencies in @p lat do not shift the intervals.
    (void)lat;
    std::vector<Interval> intervals;

    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        if (ddg.node(v).kind == OpKind::Store)
            continue;   // stores define no register
        const int def_cluster = sched.clusterOf(v);
        const int def = sched.cycleOf(v);

        int end_home = def;         // last use in the home cluster
        std::vector<std::pair<int, int>> remote_uses;

        for (int eidx : ddg.outEdges(v)) {
            const DdgEdge &e = ddg.edge(eidx);
            if (e.kind != DepKind::RegFlow)
                continue;
            const int use_cluster = sched.clusterOf(e.dst);
            const int use_time =
                sched.cycleOf(e.dst) + sched.ii * e.distance;
            if (use_cluster == def_cluster) {
                end_home = std::max(end_home, use_time);
            } else {
                remote_uses.emplace_back(use_cluster, use_time);
            }
        }

        // Copies: the source register lives until the transfer
        // leaves; the replica lives from arrival to its last use.
        for (const CopyOp &c : sched.copies) {
            if (c.producer != v)
                continue;
            end_home = std::max(end_home, c.busStart);
            int replica_end = c.readyCycle;
            for (const auto &[use_cluster, use_time] : remote_uses) {
                if (use_cluster == c.toCluster)
                    replica_end = std::max(replica_end, use_time);
            }
            intervals.push_back(
                {c.toCluster, c.readyCycle, replica_end});
        }

        intervals.push_back({def_cluster, def, end_home});
    }

    std::vector<int> max_live(std::size_t(cfg.numClusters), 0);
    for (int c = 0; c < cfg.numClusters; ++c) {
        for (int r = 0; r < sched.ii; ++r) {
            int live = 0;
            for (const Interval &iv : intervals) {
                if (iv.cluster == c)
                    live += aliveAtRow(iv, r, sched.ii);
            }
            max_live[std::size_t(c)] =
                std::max(max_live[std::size_t(c)], live);
        }
    }
    return max_live;
}

bool
registerPressureOk(const Ddg &ddg, const LatencyMap &lat,
                   const MachineConfig &cfg, const Schedule &sched)
{
    (void)lat;
    for (int live : maxLivePerCluster(ddg, lat, cfg, sched)) {
        if (live > cfg.regsPerCluster)
            return false;
    }
    return true;
}

} // namespace vliw
