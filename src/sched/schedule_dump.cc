#include "schedule_dump.hh"

#include <ostream>
#include <string>
#include <vector>

#include "support/math_util.hh"
#include "support/table.hh"

namespace vliw {

void
dumpKernel(std::ostream &os, const Ddg &ddg, const Schedule &sched,
           const MachineConfig &cfg)
{
    std::vector<std::string> headers;
    headers.push_back("row");
    for (int c = 0; c < cfg.numClusters; ++c)
        headers.push_back("cluster" + std::to_string(c));
    headers.push_back("buses");
    TextTable tab(std::move(headers));

    for (int row = 0; row < sched.ii; ++row) {
        tab.newRow().cell(std::int64_t(row));
        for (int c = 0; c < cfg.numClusters; ++c) {
            std::string cell;
            for (NodeId v = 0; v < ddg.numNodes(); ++v) {
                if (sched.clusterOf(v) != c ||
                    positiveMod(sched.cycleOf(v), sched.ii) != row)
                    continue;
                if (!cell.empty())
                    cell += " ";
                cell += ddg.node(v).name;
            }
            tab.cell(cell.empty() ? "." : cell);
        }
        std::string buses;
        for (const CopyOp &cp : sched.copies) {
            if (positiveMod(cp.busStart, sched.ii) != row)
                continue;
            if (!buses.empty())
                buses += " ";
            buses += ddg.node(cp.producer).name + "->" +
                std::to_string(cp.toCluster);
        }
        tab.cell(buses.empty() ? "." : buses);
    }
    tab.print(os);
}

void
dumpPlacements(std::ostream &os, const Ddg &ddg,
               const Schedule &sched)
{
    TextTable tab({"op", "kind", "cycle", "stage", "row", "cluster"});
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        const int cycle = sched.cycleOf(v);
        tab.newRow().cell(ddg.node(v).name);
        tab.cell(opKindName(ddg.node(v).kind));
        tab.cell(std::int64_t(cycle));
        tab.cell(std::int64_t(cycle / sched.ii));
        tab.cell(positiveMod(cycle, sched.ii));
        tab.cell(std::int64_t(sched.clusterOf(v)));
    }
    tab.print(os);
}

} // namespace vliw
