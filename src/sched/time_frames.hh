/**
 * @file
 * ASAP/ALAP time frames of a DDG at a given II, via longest-path
 * relaxation with edge weights latency - II * distance. Depth,
 * height and mobility drive the SMS ordering priorities.
 */

#ifndef WIVLIW_SCHED_TIME_FRAMES_HH
#define WIVLIW_SCHED_TIME_FRAMES_HH

#include <vector>

#include "ddg/ddg.hh"

namespace vliw {

/** Per-node scheduling freedom at a fixed II. */
struct TimeFrames
{
    std::vector<int> asap;
    std::vector<int> alap;
    /** Critical-path length: max ASAP over all nodes. */
    int length = 0;

    int depth(NodeId v) const { return asap[std::size_t(v)]; }
    int height(NodeId v) const { return length - alap[std::size_t(v)]; }
    int
    mobility(NodeId v) const
    {
        return alap[std::size_t(v)] - asap[std::size_t(v)];
    }
};

/**
 * Compute frames; @p ii must be >= RecMII or the relaxation would
 * diverge (this panics after |V| rounds in that case).
 */
TimeFrames computeTimeFrames(const Ddg &ddg, const LatencyMap &lat,
                             int ii);

} // namespace vliw

#endif // WIVLIW_SCHED_TIME_FRAMES_HH
