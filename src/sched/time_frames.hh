/**
 * @file
 * ASAP/ALAP time frames of a DDG at a given II, via longest-path
 * relaxation with edge weights latency - II * distance. Depth,
 * height and mobility drive the SMS ordering priorities.
 */

#ifndef WIVLIW_SCHED_TIME_FRAMES_HH
#define WIVLIW_SCHED_TIME_FRAMES_HH

#include <cstdint>
#include <vector>

#include "ddg/ddg.hh"

namespace vliw {

/** Per-node scheduling freedom at a fixed II. */
struct TimeFrames
{
    std::vector<int> asap;
    std::vector<int> alap;
    /** Critical-path length: max ASAP over all nodes. */
    int length = 0;

    int depth(NodeId v) const { return asap[std::size_t(v)]; }
    int height(NodeId v) const { return length - alap[std::size_t(v)]; }
    int
    mobility(NodeId v) const
    {
        return alap[std::size_t(v)] - asap[std::size_t(v)];
    }
};

/**
 * Per-edge scheduling latencies (edgeLatency() for every edge
 * index). They depend on the graph and the assigned latencies but
 * never on the II, so an II-escalation loop builds them once and
 * every attempt reads a flat array instead of re-dispatching on the
 * dependence kind per edge visit.
 */
struct EdgeWeights
{
    std::vector<int> latency;

    /** Rebuild from @p ddg, reusing this object's capacity. */
    void build(const Ddg &ddg, const LatencyMap &lat);
};

/**
 * CSR adjacency with each edge's scheduling data pre-resolved
 * (latency, iteration distance, RegFlow flag). Arcs keep the Ddg's
 * per-node edge order. II-invariant like EdgeWeights; the frames
 * relaxation, the SMS sweeps and the placement window gathering all
 * walk these flat arrays instead of chasing the Ddg's
 * vector-of-edge-indices adjacency.
 */
struct SchedGraph
{
    struct Arc
    {
        NodeId other;
        std::int32_t latency;
        std::int32_t distance;
        std::int32_t regFlow;
    };

    /** in[inOff[v] .. inOff[v+1]) = arcs entering v (other=src). */
    std::vector<std::int32_t> inOff;
    std::vector<Arc> in;
    /** out[outOff[v] .. outOff[v+1]) = arcs leaving v (other=dst). */
    std::vector<std::int32_t> outOff;
    std::vector<Arc> out;

    /** Rebuild from @p ddg, reusing this object's capacity. */
    void build(const Ddg &ddg, const EdgeWeights &weights);

    int numNodes() const { return int(inOff.size()) - 1; }
};

/**
 * Compute frames; @p ii must be >= RecMII or the relaxation would
 * diverge (this panics once a node relaxes |V|+1 times).
 */
TimeFrames computeTimeFrames(const Ddg &ddg, const LatencyMap &lat,
                             int ii);

/** As above with pre-built edge latencies (the II-retry path). */
TimeFrames computeTimeFrames(const Ddg &ddg, const EdgeWeights &w,
                             int ii);

/** Worklist storage, reusable across computeTimeFrames() calls. */
struct TimeFramesScratch
{
    std::vector<std::uint8_t> queued;
    std::vector<int> pops;
    std::vector<NodeId> queue;
};

/**
 * Allocation-free variant: writes into @p out and runs the
 * relaxation from @p scratch, both of which keep their storage
 * between calls.
 */
void computeTimeFrames(const Ddg &ddg, const EdgeWeights &w, int ii,
                       TimeFrames &out, TimeFramesScratch &scratch);

/** As above over the packed adjacency (the II-retry path). */
void computeTimeFrames(const SchedGraph &graph, int ii,
                       TimeFrames &out, TimeFramesScratch &scratch);

} // namespace vliw

#endif // WIVLIW_SCHED_TIME_FRAMES_HH
