/**
 * @file
 * Modulo reservation table over (cycle mod II, cluster, FU kind),
 * plus the register-bus slots. Register buses run at half the core
 * frequency, so one transfer occupies a bus for regBusOccupancy
 * consecutive modulo rows.
 */

#ifndef WIVLIW_SCHED_MRT_HH
#define WIVLIW_SCHED_MRT_HH

#include <vector>

#include "ddg/op_types.hh"
#include "machine/machine_config.hh"

namespace vliw {

/** Reservation state for one II attempt. */
class Mrt
{
  public:
    /** Empty table; reset() must run before any reservation. */
    Mrt() = default;

    Mrt(const MachineConfig &cfg, int ii);

    /**
     * Rebind to @p cfg and clear every reservation for a fresh
     * attempt at @p ii. Reuses the row storage, so a workspace-held
     * table stops allocating once it has seen its largest II.
     */
    void reset(const MachineConfig &cfg, int ii);

    int ii() const { return ii_; }

    /** A unit of @p kind free in @p cluster at @p cycle? */
    bool fuFree(int cluster, FuKind kind, int cycle) const;
    void reserveFu(int cluster, FuKind kind, int cycle);
    void releaseFu(int cluster, FuKind kind, int cycle);

    /** Ops currently booked on FUs of @p cluster (all kinds). */
    int clusterLoad(int cluster) const;

    /** A register bus free for a transfer starting at @p cycle? */
    bool busFree(int cycle) const;
    void reserveBus(int cycle);
    void releaseBus(int cycle);

    /**
     * First start in [first, last] (inclusive) with a free bus, or
     * INT_MIN. Equivalent to probing busFree() per start, but the
     * modulo row advances incrementally instead of dividing per
     * probe.
     */
    int firstFreeBusStart(int first, int last) const;

    /** Register-bus transfers booked so far. */
    int busTransfers() const { return busTransfers_; }

  private:
    int row(int cycle) const;
    int fuCapacity(FuKind kind) const;
    int &fuCount(int cluster, FuKind kind, int r);
    int fuCount(int cluster, FuKind kind, int r) const;

    /** Bus slot usage at row r (how many buses are busy). */
    int busRowUse(int r) const { return busUse_[std::size_t(r)]; }

    const MachineConfig *cfg_ = nullptr;
    int ii_ = 0;
    /** [row][cluster][kind] booked count. */
    std::vector<int> fuUse_;
    /** [row] number of buses occupied. */
    std::vector<int> busUse_;
    std::vector<int> clusterLoad_;
    int busTransfers_ = 0;
};

} // namespace vliw

#endif // WIVLIW_SCHED_MRT_HH
