/**
 * @file
 * Modulo reservation table over (cycle mod II, cluster, FU kind),
 * plus the register-bus slots. Register buses run at half the core
 * frequency, so one transfer occupies a bus for regBusOccupancy
 * consecutive modulo rows.
 */

#ifndef WIVLIW_SCHED_MRT_HH
#define WIVLIW_SCHED_MRT_HH

#include <vector>

#include "ddg/op_types.hh"
#include "machine/machine_config.hh"

namespace vliw {

/** Reservation state for one II attempt. */
class Mrt
{
  public:
    Mrt(const MachineConfig &cfg, int ii);

    int ii() const { return ii_; }

    /** A unit of @p kind free in @p cluster at @p cycle? */
    bool fuFree(int cluster, FuKind kind, int cycle) const;
    void reserveFu(int cluster, FuKind kind, int cycle);
    void releaseFu(int cluster, FuKind kind, int cycle);

    /** Ops currently booked on FUs of @p cluster (all kinds). */
    int clusterLoad(int cluster) const;

    /** A register bus free for a transfer starting at @p cycle? */
    bool busFree(int cycle) const;
    void reserveBus(int cycle);
    void releaseBus(int cycle);

    /** Register-bus transfers booked so far. */
    int busTransfers() const { return busTransfers_; }

  private:
    int row(int cycle) const;
    int fuCapacity(FuKind kind) const;
    int &fuCount(int cluster, FuKind kind, int r);
    int fuCount(int cluster, FuKind kind, int r) const;

    /** Bus slot usage at row r (how many buses are busy). */
    int busRowUse(int r) const { return busUse_[std::size_t(r)]; }

    const MachineConfig &cfg_;
    int ii_;
    /** [row][cluster][kind] booked count. */
    std::vector<int> fuUse_;
    /** [row] number of buses occupied. */
    std::vector<int> busUse_;
    std::vector<int> clusterLoad_;
    int busTransfers_ = 0;
};

} // namespace vliw

#endif // WIVLIW_SCHED_MRT_HH
