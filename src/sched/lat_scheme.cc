#include "lat_scheme.hh"

#include <algorithm>

#include "support/logging.hh"

namespace vliw {

LatencyScheme::LatencyScheme(std::vector<int> lats,
                             std::vector<std::string> names,
                             bool four_class)
    : latencies_(std::move(lats)), names_(std::move(names)),
      fourClass_(four_class)
{
    vliw_assert(latencies_.size() == names_.size(),
                "latency/name size mismatch");
    vliw_assert(std::is_sorted(latencies_.begin(), latencies_.end()),
                "latency classes must be ascending");
}

LatencyScheme
LatencyScheme::fourClass(const MachineConfig &cfg)
{
    return LatencyScheme(
        {cfg.latLocalHit, cfg.latRemoteHit, cfg.latLocalMiss,
         cfg.latRemoteMiss},
        {"LH", "RH", "LM", "RM"}, true);
}

LatencyScheme
LatencyScheme::twoClassUnified(const MachineConfig &cfg)
{
    return LatencyScheme(
        {cfg.latUnified, cfg.latUnified + cfg.latNextLevel},
        {"hit", "miss"}, false);
}

LatencyScheme
LatencyScheme::twoClassCoherent(const MachineConfig &cfg)
{
    return LatencyScheme(
        {cfg.latCoherentHit, cfg.latCoherentHit + cfg.latNextLevel},
        {"hit", "miss"}, false);
}

int
LatencyScheme::classLatency(LatClass cls) const
{
    vliw_assert(cls >= 0 && cls < numClasses(), "bad latency class");
    return latencies_[std::size_t(cls)];
}

const std::string &
LatencyScheme::className(LatClass cls) const
{
    vliw_assert(cls >= 0 && cls < numClasses(), "bad latency class");
    return names_[std::size_t(cls)];
}

std::vector<double>
LatencyScheme::classProbabilities(const MemProfile &prof) const
{
    const double h = prof.hitRate;
    if (fourClass_) {
        const double l = prof.localRatio;
        return {h * l, h * (1.0 - l), (1.0 - h) * l,
                (1.0 - h) * (1.0 - l)};
    }
    return {h, 1.0 - h};
}

double
LatencyScheme::expectedStall(const MemProfile &prof,
                             int scheduled_lat) const
{
    const std::vector<double> probs = classProbabilities(prof);
    double stall = 0.0;
    for (int cls = 0; cls < numClasses(); ++cls) {
        const int extra = latencies_[std::size_t(cls)] - scheduled_lat;
        if (extra > 0)
            stall += probs[std::size_t(cls)] * double(extra);
    }
    return stall;
}

} // namespace vliw
