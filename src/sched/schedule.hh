/**
 * @file
 * The result of modulo scheduling one loop: per-operation (cycle,
 * cluster) placements, the inter-cluster copy operations inserted by
 * the scheduler, II and stage count.
 */

#ifndef WIVLIW_SCHED_SCHEDULE_HH
#define WIVLIW_SCHED_SCHEDULE_HH

#include <optional>
#include <string>
#include <vector>

#include "ddg/chains.hh"
#include "ddg/ddg.hh"
#include "machine/machine_config.hh"

namespace vliw {

/** Placement of one DDG node. */
struct PlacedOp
{
    /** May be negative until the schedule is normalised. */
    int cycle = 0;
    int cluster = -1;

    bool placed() const { return cluster >= 0; }
};

/** One scheduled inter-cluster register transfer. */
struct CopyOp
{
    NodeId producer = kNoNode;
    int fromCluster = -1;
    int toCluster = -1;
    /** Issue cycle of the bus transfer (same frame as producer). */
    int busStart = -1;
    /** Cycle the value is available in @p toCluster. */
    int readyCycle = -1;
};

/** A complete modulo schedule of one loop body. */
struct Schedule
{
    int ii = 0;
    /** Schedule length: max placement cycle + 1. */
    int length = 0;
    /** Number of overlapped stages: floor(maxCycle / ii) + 1. */
    int stageCount = 0;
    /** Placements indexed by NodeId. */
    std::vector<PlacedOp> ops;
    std::vector<CopyOp> copies;

    int
    cycleOf(NodeId v) const
    {
        return ops[std::size_t(v)].cycle;
    }

    int
    clusterOf(NodeId v) const
    {
        return ops[std::size_t(v)].cluster;
    }

    /** The copy carrying @p producer's value into @p cluster. */
    const CopyOp *findCopy(NodeId producer, int cluster) const;

    /** Non-copy operations placed in @p cluster. */
    int opsInCluster(int cluster) const;

    /**
     * Workload balance of the loop (paper Section 5.2):
     * instructions in the most-loaded cluster / total instructions.
     * 1/N is perfect balance, 1.0 fully unbalanced.
     */
    double workloadBalance(int num_clusters) const;

    int numCopies() const { return int(copies.size()); }
};

/**
 * Check that @p sched satisfies every dependence (with copy routing
 * across clusters), FU capacity, bus capacity, and -- when @p chains
 * is given -- the memory-dependent-chain single-cluster rule.
 *
 * @return std::nullopt when valid, else a human-readable violation.
 */
std::optional<std::string>
validateSchedule(const Ddg &ddg, const LatencyMap &lat,
                 const MachineConfig &cfg, const Schedule &sched,
                 const MemChains *chains = nullptr);

} // namespace vliw

#endif // WIVLIW_SCHED_SCHEDULE_HH
