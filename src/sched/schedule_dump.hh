/**
 * @file
 * Human-readable rendering of modulo schedules: the kernel as one
 * row per II cycle and one column per cluster (plus the register
 * buses), and a flat placement listing. Shared by the examples, the
 * CLI driver and debugging sessions.
 */

#ifndef WIVLIW_SCHED_SCHEDULE_DUMP_HH
#define WIVLIW_SCHED_SCHEDULE_DUMP_HH

#include <iosfwd>

#include "ddg/ddg.hh"
#include "machine/machine_config.hh"
#include "sched/schedule.hh"

namespace vliw {

/**
 * Print the steady-state kernel: ops appear in row
 * (cycle mod II), bus transfers in the last column.
 */
void dumpKernel(std::ostream &os, const Ddg &ddg,
                const Schedule &sched, const MachineConfig &cfg);

/** Print one line per op: name, cycle, stage, cluster, FU kind. */
void dumpPlacements(std::ostream &os, const Ddg &ddg,
                    const Schedule &sched);

} // namespace vliw

#endif // WIVLIW_SCHED_SCHEDULE_DUMP_HH
