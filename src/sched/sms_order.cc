#include "sms_order.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"

namespace vliw {

namespace {

/** Forward (or reverse) reachability from a seed set, all edges. */
std::vector<bool>
reachable(const Ddg &ddg, const std::vector<NodeId> &seeds,
          bool forward)
{
    std::vector<bool> seen(std::size_t(ddg.numNodes()), false);
    std::deque<NodeId> work;
    for (NodeId s : seeds) {
        if (!seen[std::size_t(s)]) {
            seen[std::size_t(s)] = true;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        const NodeId v = work.front();
        work.pop_front();
        const auto &edges = forward ? ddg.outEdges(v) : ddg.inEdges(v);
        for (int eidx : edges) {
            const DdgEdge &e = ddg.edge(eidx);
            const NodeId next = forward ? e.dst : e.src;
            if (!seen[std::size_t(next)]) {
                seen[std::size_t(next)] = true;
                work.push_back(next);
            }
        }
    }
    return seen;
}

} // namespace

OrderSets
buildOrderSets(const Ddg &ddg, const std::vector<Circuit> &circuits,
               const LatencyMap &lat)
{
    OrderSets out;
    out.setOf.assign(std::size_t(ddg.numNodes()), -1);

    // Recurrences sorted by constraint: descending II, then larger,
    // then first-seen.
    std::vector<std::size_t> circ_order(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i)
        circ_order[i] = i;
    std::vector<int> circ_ii(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i)
        circ_ii[i] = circuits[i].recurrenceIi(ddg, lat);
    std::stable_sort(circ_order.begin(), circ_order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (circ_ii[a] != circ_ii[b])
                             return circ_ii[a] > circ_ii[b];
                         return circuits[a].nodes.size() >
                             circuits[b].nodes.size();
                     });

    auto assign = [&](NodeId v, int set) {
        out.setOf[std::size_t(v)] = set;
        out.sets[std::size_t(set)].push_back(v);
    };

    std::vector<NodeId> assigned_so_far;
    for (std::size_t ci : circ_order) {
        const Circuit &c = circuits[ci];
        std::vector<NodeId> fresh;
        for (NodeId v : c.nodes) {
            if (out.setOf[std::size_t(v)] < 0)
                fresh.push_back(v);
        }
        if (fresh.empty())
            continue;

        const int set = int(out.sets.size());
        out.sets.emplace_back();

        // Nodes on paths connecting previous sets with this
        // recurrence join the same set (SMS set construction).
        if (!assigned_so_far.empty()) {
            const auto from_prev = reachable(ddg, assigned_so_far,
                                             true);
            const auto to_prev = reachable(ddg, assigned_so_far,
                                           false);
            const auto from_circ = reachable(ddg, c.nodes, true);
            const auto to_circ = reachable(ddg, c.nodes, false);
            for (NodeId v = 0; v < ddg.numNodes(); ++v) {
                if (out.setOf[std::size_t(v)] >= 0)
                    continue;
                const auto i = std::size_t(v);
                const bool bridges =
                    (from_prev[i] && to_circ[i]) ||
                    (from_circ[i] && to_prev[i]);
                if (bridges && !c.contains(v))
                    assign(v, set);
            }
        }
        for (NodeId v : fresh)
            assign(v, set);
        for (NodeId v : out.sets[std::size_t(set)])
            assigned_so_far.push_back(v);
    }

    // Remaining nodes: weakly connected components, each one set.
    std::vector<bool> visited(std::size_t(ddg.numNodes()), false);
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        if (out.setOf[std::size_t(v)] >= 0 || visited[std::size_t(v)])
            continue;
        const int set = int(out.sets.size());
        out.sets.emplace_back();
        std::deque<NodeId> work{v};
        visited[std::size_t(v)] = true;
        while (!work.empty()) {
            const NodeId u = work.front();
            work.pop_front();
            assign(u, set);
            auto push = [&](NodeId w) {
                if (out.setOf[std::size_t(w)] < 0 &&
                    !visited[std::size_t(w)]) {
                    visited[std::size_t(w)] = true;
                    work.push_back(w);
                }
            };
            for (int eidx : ddg.outEdges(u))
                push(ddg.edge(eidx).dst);
            for (int eidx : ddg.inEdges(u))
                push(ddg.edge(eidx).src);
        }
    }

    return out;
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const std::vector<Circuit> &circuits,
         const LatencyMap &lat, int ii)
{
    const OrderSets sets = buildOrderSets(ddg, circuits, lat);
    const TimeFrames frames = computeTimeFrames(ddg, lat, ii);

    std::vector<NodeId> order;
    order.reserve(std::size_t(ddg.numNodes()));
    std::vector<bool> placed(std::size_t(ddg.numNodes()), false);

    enum class Dir { BottomUp, TopDown };

    for (std::size_t set_idx = 0; set_idx < sets.sets.size();
         ++set_idx) {
        const std::vector<NodeId> &set = sets.sets[set_idx];
        auto in_set = [&](NodeId v) {
            return sets.setOf[std::size_t(v)] == int(set_idx);
        };

        // Unplaced set members that precede / succeed placed nodes.
        auto preds_of_order = [&]() {
            std::vector<NodeId> r;
            for (NodeId v : set) {
                if (placed[std::size_t(v)])
                    continue;
                for (int eidx : ddg.outEdges(v)) {
                    if (placed[std::size_t(ddg.edge(eidx).dst)]) {
                        r.push_back(v);
                        break;
                    }
                }
            }
            return r;
        };
        auto succs_of_order = [&]() {
            std::vector<NodeId> r;
            for (NodeId v : set) {
                if (placed[std::size_t(v)])
                    continue;
                for (int eidx : ddg.inEdges(v)) {
                    if (placed[std::size_t(ddg.edge(eidx).src)]) {
                        r.push_back(v);
                        break;
                    }
                }
            }
            return r;
        };

        std::vector<NodeId> r_set;
        Dir dir = Dir::BottomUp;
        {
            const auto po = preds_of_order();
            const auto so = succs_of_order();
            if (!po.empty() && so.empty()) {
                r_set = po;
                dir = Dir::BottomUp;
            } else if (!so.empty() && po.empty()) {
                r_set = so;
                dir = Dir::TopDown;
            } else if (po.empty() && so.empty()) {
                // Isolated set: start bottom-up from the node with
                // the highest ASAP (the bottom of the critical path).
                NodeId pick = set.front();
                for (NodeId v : set) {
                    if (frames.asap[std::size_t(v)] >
                        frames.asap[std::size_t(pick)]) {
                        pick = v;
                    }
                }
                r_set = {pick};
                dir = Dir::BottomUp;
            } else {
                r_set = po;
                dir = Dir::BottomUp;
            }
        }

        auto take_best = [&](std::vector<NodeId> &r, bool by_depth) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < r.size(); ++i) {
                const int a = by_depth ? frames.depth(r[i])
                    : frames.height(r[i]);
                const int b = by_depth ? frames.depth(r[best])
                    : frames.height(r[best]);
                if (a > b ||
                    (a == b &&
                     frames.mobility(r[i]) <
                     frames.mobility(r[best]))) {
                    best = i;
                }
            }
            const NodeId v = r[best];
            r.erase(r.begin() + std::ptrdiff_t(best));
            return v;
        };

        while (!r_set.empty()) {
            if (dir == Dir::BottomUp) {
                while (!r_set.empty()) {
                    const NodeId v = take_best(r_set, true);
                    if (placed[std::size_t(v)])
                        continue;
                    placed[std::size_t(v)] = true;
                    order.push_back(v);
                    for (int eidx : ddg.inEdges(v)) {
                        const NodeId p = ddg.edge(eidx).src;
                        if (in_set(p) && !placed[std::size_t(p)])
                            r_set.push_back(p);
                    }
                }
                dir = Dir::TopDown;
                r_set = succs_of_order();
            } else {
                while (!r_set.empty()) {
                    const NodeId v = take_best(r_set, false);
                    if (placed[std::size_t(v)])
                        continue;
                    placed[std::size_t(v)] = true;
                    order.push_back(v);
                    for (int eidx : ddg.outEdges(v)) {
                        const NodeId s = ddg.edge(eidx).dst;
                        if (in_set(s) && !placed[std::size_t(s)])
                            r_set.push_back(s);
                    }
                }
                dir = Dir::BottomUp;
                r_set = preds_of_order();
            }
        }
    }

    vliw_assert(int(order.size()) == ddg.numNodes(),
                "SMS ordering lost nodes: ", order.size(), " of ",
                ddg.numNodes());
    return order;
}

bool
checkOrderConnectivity(const Ddg &ddg, const OrderSets &sets,
                       const std::vector<NodeId> &order)
{
    std::vector<bool> seen(std::size_t(ddg.numNodes()), false);
    std::vector<int> seeds_per_set(sets.sets.size(), 0);
    for (NodeId v : order) {
        bool has_neighbour = false;
        for (int eidx : ddg.inEdges(v)) {
            if (seen[std::size_t(ddg.edge(eidx).src)])
                has_neighbour = true;
        }
        for (int eidx : ddg.outEdges(v)) {
            if (seen[std::size_t(ddg.edge(eidx).dst)])
                has_neighbour = true;
        }
        if (!has_neighbour)
            seeds_per_set[std::size_t(
                sets.setOf[std::size_t(v)])] += 1;
        seen[std::size_t(v)] = true;
    }
    for (int seeds : seeds_per_set) {
        if (seeds > 1)
            return false;
    }
    return true;
}

std::vector<NodeId>
topologicalOrder(const Ddg &ddg, const LatencyMap &lat, int ii)
{
    const TimeFrames frames = computeTimeFrames(ddg, lat, ii);
    const int n = ddg.numNodes();
    std::vector<int> pending(std::size_t(n), 0);
    for (const DdgEdge &e : ddg.edges()) {
        if (e.distance == 0 && e.src != e.dst)
            pending[std::size_t(e.dst)] += 1;
    }

    // Ready nodes picked by smallest ASAP, then id.
    auto better = [&](NodeId a, NodeId b) {
        if (frames.asap[std::size_t(a)] !=
            frames.asap[std::size_t(b)]) {
            return frames.asap[std::size_t(a)] <
                frames.asap[std::size_t(b)];
        }
        return a < b;
    };

    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (pending[std::size_t(v)] == 0)
            ready.push_back(v);
    }

    std::vector<NodeId> order;
    order.reserve(std::size_t(n));
    while (!ready.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
            if (better(ready[i], ready[best]))
                best = i;
        }
        const NodeId v = ready[best];
        ready.erase(ready.begin() + std::ptrdiff_t(best));
        order.push_back(v);
        for (int eidx : ddg.outEdges(v)) {
            const DdgEdge &e = ddg.edge(eidx);
            if (e.distance != 0 || e.dst == v)
                continue;
            if (--pending[std::size_t(e.dst)] == 0)
                ready.push_back(e.dst);
        }
    }
    vliw_assert(int(order.size()) == n,
                "topological order incomplete: zero-distance cycle");
    return order;
}

bool
checkOrderInvariant(const Ddg &ddg, const OrderSets &sets,
                    const std::vector<NodeId> &order)
{
    std::vector<int> pos(std::size_t(ddg.numNodes()), -1);
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[std::size_t(order[i])] = int(i);

    std::vector<int> violations_per_set(sets.sets.size(), 0);
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        bool has_earlier_pred = false;
        bool has_earlier_succ = false;
        for (int eidx : ddg.inEdges(v)) {
            const NodeId p = ddg.edge(eidx).src;
            if (p != v && pos[std::size_t(p)] < pos[std::size_t(v)])
                has_earlier_pred = true;
        }
        for (int eidx : ddg.outEdges(v)) {
            const NodeId s = ddg.edge(eidx).dst;
            if (s != v && pos[std::size_t(s)] < pos[std::size_t(v)])
                has_earlier_succ = true;
        }
        if (has_earlier_pred && has_earlier_succ)
            violations_per_set[std::size_t(
                sets.setOf[std::size_t(v)])] += 1;
    }
    for (int v : violations_per_set) {
        if (v > 1)
            return false;
    }
    return true;
}

} // namespace vliw
