#include "sms_order.hh"

#include <algorithm>

#include "support/logging.hh"

namespace vliw {

namespace {

/** Forward (or reverse) reachability from a seed set, all edges. */
void
reachableInto(const Ddg &ddg, const std::vector<NodeId> &seeds,
              bool forward, std::vector<bool> &seen,
              std::vector<NodeId> &work)
{
    seen.assign(std::size_t(ddg.numNodes()), false);
    work.clear();
    for (NodeId s : seeds) {
        if (!seen[std::size_t(s)]) {
            seen[std::size_t(s)] = true;
            work.push_back(s);
        }
    }
    for (std::size_t head = 0; head < work.size(); ++head) {
        const NodeId v = work[head];
        const auto &edges = forward ? ddg.outEdges(v) : ddg.inEdges(v);
        for (int eidx : edges) {
            const DdgEdge &e = ddg.edge(eidx);
            const NodeId next = forward ? e.dst : e.src;
            if (!seen[std::size_t(next)]) {
                seen[std::size_t(next)] = true;
                work.push_back(next);
            }
        }
    }
}

} // namespace

OrderSets
buildOrderSets(const Ddg &ddg, const std::vector<Circuit> &circuits,
               const LatencyMap &lat)
{
    return buildOrderSets(ddg, circuits,
                          recurrenceIis(ddg, circuits, lat));
}

OrderSets
buildOrderSets(const Ddg &ddg, const std::vector<Circuit> &circuits,
               const std::vector<int> &circ_ii)
{
    OrderSets out;
    OrderSetsScratch scratch;
    buildOrderSets(ddg, circuits, circ_ii, out, scratch);
    return out;
}

void
buildOrderSets(const Ddg &ddg, const std::vector<Circuit> &circuits,
               const std::vector<int> &circ_ii, OrderSets &out,
               OrderSetsScratch &s)
{
    vliw_assert(circ_ii.size() == circuits.size(),
                "recurrence IIs do not match the circuit list");
    out.setOf.assign(std::size_t(ddg.numNodes()), -1);

    // Sets are reused in place: new_set() recycles a previous run's
    // inner vector when one exists, and the tail is trimmed at the
    // end.
    std::size_t active_sets = 0;
    auto new_set = [&]() {
        if (active_sets < out.sets.size())
            out.sets[active_sets].clear();
        else
            out.sets.emplace_back();
        return int(active_sets++);
    };

    // Recurrences sorted by constraint: descending II, then larger,
    // then first-seen. Insertion sort keeps the std::stable_sort
    // order without its temporary buffer; fall back to the real
    // thing for degenerate circuit counts.
    std::vector<std::size_t> &circ_order = s.circOrder;
    circ_order.resize(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i)
        circ_order[i] = i;
    auto before = [&](std::size_t a, std::size_t b) {
        if (circ_ii[a] != circ_ii[b])
            return circ_ii[a] > circ_ii[b];
        return circuits[a].nodes.size() > circuits[b].nodes.size();
    };
    if (circ_order.size() <= 32) {
        for (std::size_t i = 1; i < circ_order.size(); ++i) {
            const std::size_t c = circ_order[i];
            std::size_t j = i;
            while (j > 0 && before(c, circ_order[j - 1])) {
                circ_order[j] = circ_order[j - 1];
                --j;
            }
            circ_order[j] = c;
        }
    } else {
        std::stable_sort(circ_order.begin(), circ_order.end(),
                         before);
    }

    auto assign = [&](NodeId v, int set) {
        out.setOf[std::size_t(v)] = set;
        out.sets[std::size_t(set)].push_back(v);
    };

    std::vector<NodeId> &assigned_so_far = s.assigned;
    assigned_so_far.clear();
    for (std::size_t ci : circ_order) {
        const Circuit &c = circuits[ci];
        std::vector<NodeId> &fresh = s.fresh;
        fresh.clear();
        for (NodeId v : c.nodes) {
            if (out.setOf[std::size_t(v)] < 0)
                fresh.push_back(v);
        }
        if (fresh.empty())
            continue;

        const int set = new_set();

        // Nodes on paths connecting previous sets with this
        // recurrence join the same set (SMS set construction).
        if (!assigned_so_far.empty()) {
            reachableInto(ddg, assigned_so_far, true, s.fromPrev,
                          s.work);
            reachableInto(ddg, assigned_so_far, false, s.toPrev,
                          s.work);
            reachableInto(ddg, c.nodes, true, s.fromCirc, s.work);
            reachableInto(ddg, c.nodes, false, s.toCirc, s.work);
            for (NodeId v = 0; v < ddg.numNodes(); ++v) {
                if (out.setOf[std::size_t(v)] >= 0)
                    continue;
                const auto i = std::size_t(v);
                const bool bridges =
                    (s.fromPrev[i] && s.toCirc[i]) ||
                    (s.fromCirc[i] && s.toPrev[i]);
                if (bridges && !c.contains(v))
                    assign(v, set);
            }
        }
        for (NodeId v : fresh)
            assign(v, set);
        for (NodeId v : out.sets[std::size_t(set)])
            assigned_so_far.push_back(v);
    }

    // Remaining nodes: weakly connected components, each one set.
    std::vector<bool> &visited = s.visited;
    visited.assign(std::size_t(ddg.numNodes()), false);
    std::vector<NodeId> &work = s.work;
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        if (out.setOf[std::size_t(v)] >= 0 || visited[std::size_t(v)])
            continue;
        const int set = new_set();
        work.assign(1, v);
        visited[std::size_t(v)] = true;
        for (std::size_t head = 0; head < work.size(); ++head) {
            const NodeId u = work[head];
            assign(u, set);
            auto push = [&](NodeId w) {
                if (out.setOf[std::size_t(w)] < 0 &&
                    !visited[std::size_t(w)]) {
                    visited[std::size_t(w)] = true;
                    work.push_back(w);
                }
            };
            for (int eidx : ddg.outEdges(u))
                push(ddg.edge(eidx).dst);
            for (int eidx : ddg.inEdges(u))
                push(ddg.edge(eidx).src);
        }
    }

    out.sets.resize(active_sets);
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const std::vector<Circuit> &circuits,
         const LatencyMap &lat, int ii)
{
    return smsOrder(ddg, buildOrderSets(ddg, circuits, lat), lat,
                    ii);
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const OrderSets &sets,
         const LatencyMap &lat, int ii)
{
    EdgeWeights weights;
    weights.build(ddg, lat);
    return smsOrder(ddg, sets, weights, ii);
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const OrderSets &sets,
         const EdgeWeights &weights, int ii)
{
    SchedGraph graph;
    graph.build(ddg, weights);
    SmsScratch scratch;
    return smsOrder(graph, sets, ii, scratch);
}

const std::vector<NodeId> &
smsOrder(const SchedGraph &graph, const OrderSets &sets, int ii,
         SmsScratch &scratch)
{
    const int num_nodes = graph.numNodes();
    computeTimeFrames(graph, ii, scratch.frames,
                      scratch.framesScratch);
    const TimeFrames &frames = scratch.frames;

    std::vector<NodeId> &order = scratch.order;
    order.clear();
    order.reserve(std::size_t(num_nodes));
    std::vector<bool> &placed = scratch.placed;
    placed.assign(std::size_t(num_nodes), false);
    // Sweep worklists, reused across every set and direction flip
    // (the ordering runs once per II attempt, so churn here was a
    // measurable slice of the II-escalation path).
    std::vector<NodeId> &r_set = scratch.rset;
    std::vector<NodeId> &peers = scratch.peers;

    enum class Dir { BottomUp, TopDown };

    for (std::size_t set_idx = 0; set_idx < sets.sets.size();
         ++set_idx) {
        const std::vector<NodeId> &set = sets.sets[set_idx];
        auto in_set = [&](NodeId v) {
            return sets.setOf[std::size_t(v)] == int(set_idx);
        };

        // Unplaced set members that precede / succeed placed nodes.
        auto fill_preds = [&](std::vector<NodeId> &r) {
            r.clear();
            for (NodeId v : set) {
                if (placed[std::size_t(v)])
                    continue;
                for (std::int32_t k = graph.outOff[std::size_t(v)];
                     k < graph.outOff[std::size_t(v) + 1]; ++k) {
                    if (placed[std::size_t(
                            graph.out[std::size_t(k)].other)]) {
                        r.push_back(v);
                        break;
                    }
                }
            }
        };
        auto fill_succs = [&](std::vector<NodeId> &r) {
            r.clear();
            for (NodeId v : set) {
                if (placed[std::size_t(v)])
                    continue;
                for (std::int32_t k = graph.inOff[std::size_t(v)];
                     k < graph.inOff[std::size_t(v) + 1]; ++k) {
                    if (placed[std::size_t(
                            graph.in[std::size_t(k)].other)]) {
                        r.push_back(v);
                        break;
                    }
                }
            }
        };

        Dir dir = Dir::BottomUp;
        fill_preds(r_set);
        fill_succs(peers);
        if (!r_set.empty() && peers.empty()) {
            dir = Dir::BottomUp;
        } else if (!peers.empty() && r_set.empty()) {
            r_set.swap(peers);
            dir = Dir::TopDown;
        } else if (r_set.empty() && peers.empty()) {
            // Isolated set: start bottom-up from the node with
            // the highest ASAP (the bottom of the critical path).
            NodeId pick = set.front();
            for (NodeId v : set) {
                if (frames.asap[std::size_t(v)] >
                    frames.asap[std::size_t(pick)]) {
                    pick = v;
                }
            }
            r_set.assign(1, pick);
            dir = Dir::BottomUp;
        } else {
            dir = Dir::BottomUp;   // r_set already holds the preds
        }

        auto take_best = [&](std::vector<NodeId> &r, bool by_depth) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < r.size(); ++i) {
                const int a = by_depth ? frames.depth(r[i])
                    : frames.height(r[i]);
                const int b = by_depth ? frames.depth(r[best])
                    : frames.height(r[best]);
                if (a > b ||
                    (a == b &&
                     frames.mobility(r[i]) <
                     frames.mobility(r[best]))) {
                    best = i;
                }
            }
            const NodeId v = r[best];
            r.erase(r.begin() + std::ptrdiff_t(best));
            return v;
        };

        while (!r_set.empty()) {
            if (dir == Dir::BottomUp) {
                while (!r_set.empty()) {
                    const NodeId v = take_best(r_set, true);
                    if (placed[std::size_t(v)])
                        continue;
                    placed[std::size_t(v)] = true;
                    order.push_back(v);
                    for (std::int32_t k =
                             graph.inOff[std::size_t(v)];
                         k < graph.inOff[std::size_t(v) + 1]; ++k) {
                        const NodeId p =
                            graph.in[std::size_t(k)].other;
                        if (in_set(p) && !placed[std::size_t(p)])
                            r_set.push_back(p);
                    }
                }
                dir = Dir::TopDown;
                fill_succs(r_set);
            } else {
                while (!r_set.empty()) {
                    const NodeId v = take_best(r_set, false);
                    if (placed[std::size_t(v)])
                        continue;
                    placed[std::size_t(v)] = true;
                    order.push_back(v);
                    for (std::int32_t k =
                             graph.outOff[std::size_t(v)];
                         k < graph.outOff[std::size_t(v) + 1]; ++k) {
                        const NodeId s =
                            graph.out[std::size_t(k)].other;
                        if (in_set(s) && !placed[std::size_t(s)])
                            r_set.push_back(s);
                    }
                }
                dir = Dir::BottomUp;
                fill_preds(r_set);
            }
        }
    }

    vliw_assert(int(order.size()) == num_nodes,
                "SMS ordering lost nodes: ", order.size(), " of ",
                num_nodes);
    return order;
}

bool
checkOrderConnectivity(const Ddg &ddg, const OrderSets &sets,
                       const std::vector<NodeId> &order)
{
    std::vector<bool> seen(std::size_t(ddg.numNodes()), false);
    std::vector<int> seeds_per_set(sets.sets.size(), 0);
    for (NodeId v : order) {
        bool has_neighbour = false;
        for (int eidx : ddg.inEdges(v)) {
            if (seen[std::size_t(ddg.edge(eidx).src)])
                has_neighbour = true;
        }
        for (int eidx : ddg.outEdges(v)) {
            if (seen[std::size_t(ddg.edge(eidx).dst)])
                has_neighbour = true;
        }
        if (!has_neighbour)
            seeds_per_set[std::size_t(
                sets.setOf[std::size_t(v)])] += 1;
        seen[std::size_t(v)] = true;
    }
    for (int seeds : seeds_per_set) {
        if (seeds > 1)
            return false;
    }
    return true;
}

std::vector<NodeId>
topologicalOrder(const Ddg &ddg, const LatencyMap &lat, int ii)
{
    EdgeWeights weights;
    weights.build(ddg, lat);
    return topologicalOrder(ddg, weights, ii);
}

std::vector<NodeId>
topologicalOrder(const Ddg &ddg, const EdgeWeights &weights, int ii)
{
    const TimeFrames frames = computeTimeFrames(ddg, weights, ii);
    const int n = ddg.numNodes();
    std::vector<int> pending(std::size_t(n), 0);
    for (const DdgEdge &e : ddg.edges()) {
        if (e.distance == 0 && e.src != e.dst)
            pending[std::size_t(e.dst)] += 1;
    }

    // Ready nodes picked by smallest ASAP, then id.
    auto better = [&](NodeId a, NodeId b) {
        if (frames.asap[std::size_t(a)] !=
            frames.asap[std::size_t(b)]) {
            return frames.asap[std::size_t(a)] <
                frames.asap[std::size_t(b)];
        }
        return a < b;
    };

    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (pending[std::size_t(v)] == 0)
            ready.push_back(v);
    }

    std::vector<NodeId> order;
    order.reserve(std::size_t(n));
    while (!ready.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
            if (better(ready[i], ready[best]))
                best = i;
        }
        const NodeId v = ready[best];
        ready.erase(ready.begin() + std::ptrdiff_t(best));
        order.push_back(v);
        for (int eidx : ddg.outEdges(v)) {
            const DdgEdge &e = ddg.edge(eidx);
            if (e.distance != 0 || e.dst == v)
                continue;
            if (--pending[std::size_t(e.dst)] == 0)
                ready.push_back(e.dst);
        }
    }
    vliw_assert(int(order.size()) == n,
                "topological order incomplete: zero-distance cycle");
    return order;
}

bool
checkOrderInvariant(const Ddg &ddg, const OrderSets &sets,
                    const std::vector<NodeId> &order)
{
    std::vector<int> pos(std::size_t(ddg.numNodes()), -1);
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[std::size_t(order[i])] = int(i);

    std::vector<int> violations_per_set(sets.sets.size(), 0);
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        bool has_earlier_pred = false;
        bool has_earlier_succ = false;
        for (int eidx : ddg.inEdges(v)) {
            const NodeId p = ddg.edge(eidx).src;
            if (p != v && pos[std::size_t(p)] < pos[std::size_t(v)])
                has_earlier_pred = true;
        }
        for (int eidx : ddg.outEdges(v)) {
            const NodeId s = ddg.edge(eidx).dst;
            if (s != v && pos[std::size_t(s)] < pos[std::size_t(v)])
                has_earlier_succ = true;
        }
        if (has_earlier_pred && has_earlier_succ)
            violations_per_set[std::size_t(
                sets.setOf[std::size_t(v)])] += 1;
    }
    for (int v : violations_per_set) {
        if (v > 1)
            return false;
    }
    return true;
}

} // namespace vliw
