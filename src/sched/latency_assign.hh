/**
 * @file
 * Latency assignment for memory instructions (Section 4.3.1 step 2).
 *
 * Every load starts at the worst-class latency (remote miss). The
 * pass then walks the recurrences from most to least II-constraining
 * and lowers the latency of selectively chosen loads, maximising the
 * benefit function B = (decrease in II) / (increase in expected
 * stall), until each recurrence's II matches the MII the loop would
 * have if every load were a local hit. When a recurrence ends up
 * below that target, the last-lowered load is raised again to absorb
 * the slack (footnote 3 of the paper: n1 ends at 4 cycles).
 */

#ifndef WIVLIW_SCHED_LATENCY_ASSIGN_HH
#define WIVLIW_SCHED_LATENCY_ASSIGN_HH

#include <vector>

#include "ddg/circuits.hh"
#include "ddg/ddg.hh"
#include "ddg/profile_map.hh"
#include "machine/machine_config.hh"
#include "sched/lat_scheme.hh"

namespace vliw {

/** One latency reduction, kept for the worked-example bench/test. */
struct LatencyStep
{
    NodeId node = kNoNode;
    LatClass fromClass = 0;
    LatClass toClass = 0;
    int iiBefore = 0;
    int iiAfter = 0;
    double stallBefore = 0.0;
    double stallAfter = 0.0;
    double benefit = 0.0;
};

/** Result of the latency assignment pass. */
struct LatencyAssignment
{
    /** Final integer latencies for every node. */
    LatencyMap latencies;
    /** Final class per node (loads only are meaningful). */
    std::vector<LatClass> classOf;
    /** The target: MII with all loads at the best-class latency. */
    int miiTarget = 1;
    /** Reductions in application order. */
    std::vector<LatencyStep> trace;

    int assignedLatency(NodeId id) const { return latencies(id); }
};

/**
 * Run the assignment.
 *
 * @param ddg      the (already unrolled) loop body
 * @param circuits elementary circuits of @p ddg
 * @param prof     profile data (hit rate, local ratio) per load
 * @param scheme   four-class (interleaved) or two-class scheme
 * @param cfg      machine description (for ResMII)
 */
LatencyAssignment assignLatencies(const Ddg &ddg,
                                  const std::vector<Circuit> &circuits,
                                  const ProfileMap &prof,
                                  const LatencyScheme &scheme,
                                  const MachineConfig &cfg);

/**
 * Candidate benefits for one recurrence in its current state --
 * exposed separately so the Section 4.3.3 example table can be
 * printed by bench/table_latency_example.
 */
std::vector<LatencyStep>
enumerateBenefits(const Ddg &ddg, const Circuit &circuit,
                  const ProfileMap &prof, const LatencyScheme &scheme,
                  const LatencyMap &current,
                  const std::vector<LatClass> &class_of);

} // namespace vliw

#endif // WIVLIW_SCHED_LATENCY_ASSIGN_HH
