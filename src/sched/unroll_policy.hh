/**
 * @file
 * Unrolling policies (paper Section 4.3.1 step 1): no unrolling,
 * unroll x N, OUF (optimal unrolling factor), and selective (pick
 * whichever of the three minimises estimated execution time).
 *
 * The OUF of a loop makes every analysable memory instruction's
 * stride a multiple of N x I so it touches a single cluster:
 *   U_i = (N*I) / gcd(N*I, S_i mod N*I),   UF = lcm_i(U_i) <= N*I.
 * Instructions with unknown stride, zero profiled hit rate, or
 * granularity above the interleaving factor are excluded.
 */

#ifndef WIVLIW_SCHED_UNROLL_POLICY_HH
#define WIVLIW_SCHED_UNROLL_POLICY_HH

#include "ddg/ddg.hh"
#include "ddg/profile_map.hh"
#include "machine/machine_config.hh"

namespace vliw {

/** Which unrolling rule the toolchain applies. */
enum class UnrollPolicy { None, TimesN, Ouf, Selective };

const char *unrollPolicyName(UnrollPolicy policy);

/** Per-instruction unrolling factor U_i (1 if not analysable). */
int individualUnrollFactor(const MemAccessInfo &info,
                           const MemProfile &prof,
                           const MachineConfig &cfg);

/** The loop's OUF (lcm of the U_i, bounded by N x I). */
int computeOuf(const Ddg &ddg, const ProfileMap &prof,
               const MachineConfig &cfg);

/**
 * Estimated execution time of a modulo-scheduled loop (paper
 * Section 4.3.1): (ceil(avg_iters / U) + SC - 1) * II.
 */
double estimateTexec(double avg_iterations, int unroll_factor,
                     int stage_count, int ii);

} // namespace vliw

#endif // WIVLIW_SCHED_UNROLL_POLICY_HH
