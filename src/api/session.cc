#include "session.hh"

#include <cstdio>

#include "api/executor.hh"
#include "dist/compile_store.hh"
#include "lang/diag.hh"
#include "lang/lower.hh"
#include "lang/writer.hh"
#include "workloads/dataset.hh"

namespace vliw::api {

Status
validateOptions(const ToolchainOptions &opts)
{
    if (opts.abHintBudget < 0) {
        return Status::invalidArgument(
            "abHintBudget must be >= 0, got " +
            std::to_string(opts.abHintBudget));
    }
    if (opts.maxIiTries < 1) {
        return Status::invalidArgument(
            "maxIiTries must be >= 1, got " +
            std::to_string(opts.maxIiTries));
    }
    if (opts.profile.maxIterations < 0) {
        return Status::invalidArgument(
            "profile.maxIterations must be >= 0, got " +
            std::to_string(opts.profile.maxIterations));
    }
    return Status();
}

namespace {

Status
validateDatasets(int datasets)
{
    if (datasets < 1) {
        return Status::invalidArgument(
            "datasets must be >= 1, got " +
            std::to_string(datasets));
    }
    return Status();
}

} // namespace

std::size_t
SweepResult::failedCount() const
{
    std::size_t failed = 0;
    for (const engine::ExperimentResult &r : experiments)
        failed += r.failed() ? 1 : 0;
    return failed;
}

std::size_t
SweepResult::completedCount() const
{
    return experiments.size() - failedCount();
}

Status
SweepResult::firstError() const
{
    for (const engine::ExperimentResult &r : experiments) {
        if (r.failed())
            return detail::cellStatus(r);
    }
    return Status();
}

struct Session::Impl
{
    SessionOptions opts;
    Registries registries = Registries::builtin();
    engine::ExperimentEngine engine;
    /** After engine: the executor's pool drains cells that still
     *  reference the engine and its cache. */
    detail::AsyncExecutor executor;

    explicit Impl(const SessionOptions &o)
        : opts(o),
          engine(engine::EngineOptions{o.jobs, o.compileCache,
                                       o.cacheCapacity,
                                       makeStore(o)}),
          executor(engine, o.jobs,
                   detail::AdmissionLimits{o.maxQueuedCells,
                                           o.maxQueuedJobs})
    {
        if (!o.builtinWorkloads)
            registries.workloads = WorkloadRegistry();
    }

    static std::shared_ptr<engine::PersistentCompileStore>
    makeStore(const SessionOptions &o)
    {
        if (o.storeDir.empty() || !o.compileCache)
            return nullptr;
        auto store = std::make_shared<dist::CompileStore>(o.storeDir);
        if (!store->status().ok()) {
            // Degrade, don't die: a bad --store path costs the
            // acceleration, never the sweep.
            std::fprintf(stderr, "wivliw: compile store disabled: %s\n",
                         store->status().message().c_str());
            return nullptr;
        }
        return store;
    }

    /** Resolve a RunRequest into an engine spec, or fail. */
    Result<engine::ExperimentSpec>
    resolve(const RunRequest &req) const
    {
        if (Status s = validateOptions(req.options); !s.ok())
            return s;
        if (Status s = validateDatasets(req.datasets); !s.ok())
            return s;

        auto arch = registries.archs.resolve(req.arch);
        if (!arch.ok())
            return arch.status();
        auto heuristic = registries.schedulers.resolve(req.scheduler);
        if (!heuristic.ok())
            return heuristic.status();
        auto unroll = registries.unrolls.resolve(req.unroll);
        if (!unroll.ok())
            return unroll.status();
        auto workload = registries.workloads.resolve(req.workload);
        if (!workload.ok())
            return workload.status();

        engine::ExperimentSpec spec;
        spec.bench = req.workload;
        spec.arch = {req.arch, arch.take()};
        spec.opts = req.options;
        spec.opts.heuristic = heuristic.value().heuristic;
        spec.opts.optimalSolver = heuristic.value().optimal;
        spec.opts.solverBudget = heuristic.value().budget;
        spec.opts.unroll = unroll.value();
        spec.workload = workload.take();
        if (req.datasets > 1) {
            spec.execSeeds.reserve(std::size_t(req.datasets));
            for (int d = 0; d < req.datasets; ++d) {
                spec.execSeeds.push_back(
                    datasetSeed(spec.opts.execSeed, d));
            }
        }
        return spec;
    }

    /**
     * Validate every axis of a SweepRequest atomically and expand
     * it to grid-ordered specs, or fail with the offending axis's
     * Status before any work runs.
     */
    Result<std::vector<engine::ExperimentSpec>>
    resolveSweep(const SweepRequest &req) const
    {
        if (Status s = validateOptions(req.options); !s.ok())
            return s;
        if (Status s = validateDatasets(req.datasets); !s.ok())
            return s;
        if (req.jobs < 0) {
            return Status::invalidArgument(
                "jobs must be >= 0, got " + std::to_string(req.jobs));
        }
        if (req.schedulers.empty() || req.unrolls.empty() ||
            req.alignment.empty() || req.chains.empty() ||
            req.versioning.empty()) {
            return Status::invalidArgument(
                "every sweep axis needs at least one entry");
        }

        const Registries &reg = registries;
        for (const std::string &name : req.workloads) {
            if (!reg.workloads.contains(name))
                return reg.workloads.unknown(name);
        }
        for (const std::string &name : req.archs) {
            if (auto r = reg.archs.resolve(name); !r.ok())
                return r.status();
        }
        for (const std::string &name : req.schedulers) {
            // resolve(), not contains(): parametric budget keys
            // (`optimal:b5000ms`) must validate here too, so a bad
            // grammar fails the sweep up front with context.
            if (auto r = reg.schedulers.resolve(name); !r.ok())
                return r.status();
        }
        for (const std::string &name : req.unrolls) {
            if (!reg.unrolls.contains(name))
                return reg.unrolls.unknown(name);
        }

        engine::ExperimentGrid grid;
        grid.benches = req.workloads;
        grid.archs = req.archs;
        grid.heuristics = req.schedulers;
        grid.unrolls = req.unrolls;
        grid.alignment = req.alignment;
        grid.chains = req.chains;
        grid.versioning = req.versioning;
        grid.datasets = req.datasets;
        grid.base = req.options;
        grid.registries = &reg;
        return grid.expand();
    }
};

Session::Session(const SessionOptions &opts)
    : impl_(std::make_unique<Impl>(opts))
{
}

Session::~Session() = default;
Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;

Registries &
Session::registries()
{
    return impl_->registries;
}

const Registries &
Session::registries() const
{
    return impl_->registries;
}

namespace {

/** Ingestion counters, shared by every front door (CLI, library,
 *  daemon) because they all funnel through the Session calls. */
struct IngestMetrics
{
    metrics::Counter &registered;
    metrics::Counter &parseErrors;
};

IngestMetrics &
ingestMetrics()
{
    static IngestMetrics m{
        metrics::registry().counter(
            "wivliw_workloads_registered_total"),
        metrics::registry().counter(
            "wivliw_workload_parse_errors_total")};
    return m;
}

} // namespace

Result<std::vector<std::string>>
Session::registerWorkloadText(const std::string &name,
                              const std::string &source,
                              const std::string &origin,
                              const std::string &label)
{
    std::vector<BenchmarkSpec> specs;
    if (auto diag = lang::compileWvl(source, specs)) {
        ingestMetrics().parseErrors.add();
        return Status::invalidArgument(
            lang::renderDiag(*diag, source, label),
            std::to_string(diag->pos.line) + ":" +
                std::to_string(diag->pos.col));
    }

    std::vector<BenchmarkSpec *> chosen;
    if (name.empty()) {
        for (BenchmarkSpec &spec : specs)
            chosen.push_back(&spec);
    } else if (specs.size() == 1) {
        if (specs[0].name != name) {
            specs[0].name = name;
            specs[0].fingerprint = lang::wvlFingerprint(specs[0]);
        }
        chosen.push_back(&specs[0]);
    } else {
        for (BenchmarkSpec &spec : specs) {
            if (spec.name == name) {
                chosen.push_back(&spec);
                break;
            }
        }
        if (chosen.empty())
            return Status::invalidArgument(
                "source defines " +
                    std::to_string(specs.size()) +
                    " benchmarks but none is named '" + name +
                    "'");
    }

    // All-or-nothing: check every name before touching the
    // registry, so a mid-list collision cannot half-register.
    WorkloadRegistry &workloads = impl_->registries.workloads;
    std::vector<BenchmarkSpec *> fresh;
    for (BenchmarkSpec *spec : chosen) {
        const WorkloadEntry *existing = workloads.find(spec->name);
        if (!existing) {
            fresh.push_back(spec);
            continue;
        }
        // Same name, same content: idempotent (a client pushing
        // its kernel to a long-lived daemon twice is fine).
        if (existing->spec &&
            existing->spec->fingerprint == spec->fingerprint)
            continue;
        return Status::error(
            StatusCode::AlreadyExists,
            "benchmark '" + spec->name +
                "' is already registered with different "
                "content",
            existing->origin);
    }
    std::vector<std::string> registered;
    for (BenchmarkSpec *spec : fresh) {
        const std::string benchName = spec->name;
        const Status st =
            workloads.add(benchName, std::move(*spec),
                          "ingested workload (.wvl)", origin);
        if (!st.ok())
            return st; // unreachable after the pre-check
        registered.push_back(benchName);
    }
    ingestMetrics().registered.add(registered.size());
    return registered;
}

Result<std::string>
Session::dumpWorkloadText(const std::string &workload) const
{
    auto spec = impl_->registries.workloads.resolve(workload);
    if (!spec.ok())
        return spec.status();
    return lang::dumpWorkloadText(*spec.value());
}

Result<MachineConfig>
Session::resolveArch(const std::string &key) const
{
    return impl_->registries.archs.resolve(key);
}

Result<std::shared_ptr<const CompiledBenchmark>>
Session::compile(const RunRequest &req)
{
    auto spec = impl_->resolve(req);
    if (!spec.ok())
        return spec.status();

    try {
        if (impl_->opts.compileCache) {
            return impl_->engine.cache().compile(
                spec.value().arch.config, spec.value().opts,
                *spec.value().workload);
        }
        const Toolchain chain(spec.value().arch.config,
                              spec.value().opts);
        return std::shared_ptr<const CompiledBenchmark>(
            std::make_shared<const CompiledBenchmark>(
                chain.compileBenchmark(*spec.value().workload)));
    } catch (const CompileError &e) {
        return Status::error(StatusCode::FailedPrecondition,
                             e.what());
    } catch (const std::exception &e) {
        return Status::error(StatusCode::Internal, e.what());
    }
}

JobHandle<RunResult>
Session::submit(const RunRequest &req, const SubmitOptions &opts)
{
    auto spec = impl_->resolve(req);
    if (!spec.ok()) {
        return JobHandle<RunResult>(
            impl_->executor.submit({}, false, opts, spec.status()));
    }
    std::vector<engine::ExperimentSpec> specs;
    specs.push_back(spec.take());
    return JobHandle<RunResult>(
        impl_->executor.submit(std::move(specs), false, opts));
}

JobHandle<SweepResult>
Session::submit(const SweepRequest &req, const SubmitOptions &opts)
{
    // Validate before growing the shared pool: a rejected request
    // must not leave threads behind. Growth failure itself is not
    // a submission failure either — the job just runs on the pool
    // the session already has.
    auto specs = impl_->resolveSweep(req);
    if (!specs.ok()) {
        return JobHandle<SweepResult>(
            impl_->executor.submit({}, true, opts, specs.status()));
    }
    if (req.jobs > 0) {
        try {
            impl_->executor.ensureThreads(req.jobs);
        } catch (const std::exception &) {
        }
    }
    return JobHandle<SweepResult>(
        impl_->executor.submit(specs.take(), true, opts));
}

Result<RunResult>
Session::run(const RunRequest &req)
{
    // The async path with default submission options: same cell
    // kernel, same compile cache, bit-identical to the pre-async
    // blocking implementation (the engine's determinism contract).
    return submit(req).wait().take();
}

Result<SweepResult>
Session::sweep(const SweepRequest &req)
{
    // Validate first so a bad request fails atomically with a
    // Status (the async surface instead parks the error on the
    // job); then run the pre-resolved specs as a normal job.
    auto specs = impl_->resolveSweep(req);
    if (!specs.ok())
        return specs.status();
    if (req.jobs > 0) {
        try {
            impl_->executor.ensureThreads(req.jobs);
        } catch (const std::exception &) {
        }
    }
    JobHandle<SweepResult> job(
        impl_->executor.submit(specs.take(), true, {}));
    return job.wait().take();
}

engine::CompileCacheStats
Session::cacheStats() const
{
    return impl_->engine.cacheStats();
}

metrics::Snapshot
Session::metricsSnapshot() const
{
    return metrics::registry().snapshot();
}

std::string
Session::metricsText() const
{
    return metrics::renderPrometheus(metrics::registry().snapshot());
}

const SessionOptions &
Session::options() const
{
    return impl_->opts;
}

} // namespace vliw::api
