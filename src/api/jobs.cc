#include "jobs.hh"

#include "api/session.hh"

namespace vliw::api {

const char *
jobPhaseName(JobPhase phase)
{
    switch (phase) {
      case JobPhase::Queued:     return "queued";
      case JobPhase::Running:    return "running";
      case JobPhase::Cancelling: return "cancelling";
      case JobPhase::Done:       return "done";
    }
    return "?";
}

namespace detail {

void
coreWait(JobCore &core)
{
    std::unique_lock<std::mutex> lock(core.mu);
    core.cv.wait(lock,
                 [&core] { return core.phase == JobPhase::Done; });
}

bool
coreWaitFor(JobCore &core, std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(core.mu);
    return core.cv.wait_for(lock, timeout, [&core] {
        return core.phase == JobPhase::Done;
    });
}

JobPhase
corePoll(const JobCore &core)
{
    std::lock_guard<std::mutex> lock(core.mu);
    return core.phase;
}

Progress
coreProgress(const JobCore &core)
{
    std::lock_guard<std::mutex> lock(core.mu);
    return Progress{core.done, core.total};
}

void
coreCancel(JobCore &core)
{
    // The flag first: workers polling it must observe the request
    // no later than the phase change becomes visible.
    core.cancelRequested.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(core.mu);
    if (core.phase != JobPhase::Done)
        core.phase = JobPhase::Cancelling;
}

std::optional<Status>
coreFinalStatus(const JobCore &core)
{
    std::lock_guard<std::mutex> lock(core.mu);
    if (core.phase != JobPhase::Done)
        return std::nullopt;
    return core.finalStatus;
}

Status
cellStatus(const engine::ExperimentResult &result)
{
    if (!result.failed())
        return Status();
    if (result.cancelled) {
        return Status::cancelled(result.spec.label() + ": " +
                                 result.error);
    }
    return Status::error(result.userError
                             ? StatusCode::FailedPrecondition
                             : StatusCode::Internal,
                         result.spec.label() + ": " + result.error);
}

namespace {

/** Common take() prologue; Ok when the result may be consumed. */
Status
takeable(JobCore &core)
{
    std::lock_guard<std::mutex> lock(core.mu);
    if (core.phase != JobPhase::Done) {
        return Status::error(StatusCode::FailedPrecondition,
                             "job is still running; wait() first");
    }
    if (core.taken) {
        return Status::error(StatusCode::FailedPrecondition,
                             "job result was already taken");
    }
    core.taken = true;
    return Status();
}

/** True for terminal codes that leave partial results valid. */
bool
keepsPartialResults(StatusCode code)
{
    return code == StatusCode::Cancelled ||
           code == StatusCode::DeadlineExceeded;
}

} // namespace

template <>
Result<RunResult>
coreTake<RunResult>(JobCore &core)
{
    if (Status s = takeable(core); !s.ok())
        return s;
    if (!core.finalStatus.ok() &&
        !keepsPartialResults(core.finalStatus.code())) {
        return core.finalStatus;    // rejected at submission
    }
    vliw_assert(core.experiments.size() == 1,
                "run job with ", core.experiments.size(), " cells");
    engine::ExperimentResult &cell = core.experiments.front();
    // A cell skipped because the deadline fired reports the job's
    // DeadlineExceeded, not the generic per-cell Cancelled.
    if (cell.failed() && cell.cancelled &&
        core.finalStatus.code() == StatusCode::DeadlineExceeded) {
        return core.finalStatus;
    }
    if (Status s = cellStatus(cell); !s.ok())
        return s;
    return RunResult{std::move(cell)};
}

template <>
Result<SweepResult>
coreTake<SweepResult>(JobCore &core)
{
    if (Status s = takeable(core); !s.ok())
        return s;
    if (!core.finalStatus.ok() &&
        !keepsPartialResults(core.finalStatus.code())) {
        return core.finalStatus;    // rejected at submission
    }
    SweepResult out;
    out.experiments = std::move(core.experiments);
    out.cache = core.cacheAtFinish;
    out.status = core.finalStatus;
    return out;
}

} // namespace detail

} // namespace vliw::api
