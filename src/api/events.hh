/**
 * @file
 * The typed event stream of asynchronous jobs (api::Session::
 * submit): a small closed set of event kinds, an EventSink
 * interface the session delivers them through, and a bounded MPSC
 * queue sink for consumers that want to pull instead of being
 * called.
 *
 * Delivery contract: per job, JobAccepted arrives first and
 * exactly one JobFinished arrives last; each cell's CellCompiled
 * strictly precedes its CellSimulated (or CellFailed); a Progress
 * update follows every cell that retires (completed, failed or
 * skipped by cancellation) and its `done` count is strictly
 * monotonic. Cell events of *different* cells of one job may
 * interleave when the job runs on several workers (cell 1's
 * CellCompiled can land between cell 0's CellCompiled and
 * CellSimulated), and events of different jobs sharing one sink
 * interleave arbitrarily. The sink is
 * invoked from the session's worker threads while the job's event
 * lock is held: a sink that blocks (a full BoundedEventQueue)
 * therefore stalls that job's workers — this is the backpressure
 * mechanism, a slow consumer slows its producer instead of growing
 * an unbounded buffer. Event timing and priorities never influence
 * result values (the engine's determinism contract).
 */

#ifndef WIVLIW_API_EVENTS_HH
#define WIVLIW_API_EVENTS_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "api/status.hh"
#include "engine/compile_cache.hh"

namespace vliw::api {

/** Session-scoped job identity; never reused within a session. */
using JobId = std::uint64_t;

/** Cells finished so far (completed, failed or skipped) / total. */
struct Progress
{
    int done = 0;
    int total = 0;
};

/** What happened (see the file comment for the per-job order). */
enum class EventKind
{
    /** The job was admitted; progress carries {0, total cells}. */
    JobAccepted,
    /** One cell finished its compile phase (label = the cell). */
    CellCompiled,
    /** One cell finished simulating; its results are in place. */
    CellSimulated,
    /** One cell failed; `status` carries the per-cell Status. */
    CellFailed,
    /** A cell was retired; progress advanced monotonically. */
    Progress,
    /** The job is done: `status` is the job's final Status (Ok or
     *  Cancelled) and `cache` the session's compile-cache counters
     *  at completion. Emitted exactly once, last. */
    JobFinished,
};

/** Stable wire name ("accepted", "cell-compiled", ...). */
const char *eventKindName(EventKind kind);

/** One event; which members are meaningful depends on `kind`. */
struct JobEvent
{
    EventKind kind = EventKind::Progress;
    JobId job = 0;
    /** Cell events: the cell's index in grid order. */
    std::size_t cell = 0;
    /** Cell events: the cell's spec label. */
    std::string label;
    /** CellCompiled: the exact solver's outcome for the cell
     *  ("proven", "feasible" or "budget-exhausted"); empty for
     *  heuristic cells, so existing consumers see no change. */
    std::string solver;
    /** CellFailed: the cell's Status; JobFinished: the job's. */
    Status status;
    Progress progress;
    /** JobFinished: the session's cache counters. */
    engine::CompileCacheStats cache;
};

/**
 * Receiver of a job's events; pass one to SubmitOptions. Must
 * outlive every job it is attached to. Implementations are called
 * from worker threads (one event at a time per job, but different
 * jobs may call concurrently) and may block to exert backpressure.
 * An exception escaping handle() never crashes a worker or alters
 * a computed result: a throw from the CellCompiled delivery fails
 * that cell as Internal (the event fires on the cell's execution
 * path); throws from other deliveries are absorbed.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    virtual void handle(const JobEvent &event) = 0;
};

/**
 * A bounded multi-producer/single-consumer event queue usable as a
 * sink: handle() blocks while the queue is full (backpressure —
 * the buffer never grows past the capacity), pop() blocks until an
 * event or close() arrives. close() releases all blocked
 * producers, discarding events that no longer fit; already-queued
 * events still drain through pop().
 */
class BoundedEventQueue final : public EventSink
{
  public:
    explicit BoundedEventQueue(std::size_t capacity = 256);

    void handle(const JobEvent &event) override;

    /** Next event, blocking; false once closed and drained. */
    bool pop(JobEvent &out);

    /** Non-blocking pop; false when empty right now. */
    bool tryPop(JobEvent &out);

    void close();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<JobEvent> events_;
    bool closed_ = false;
};

} // namespace vliw::api

#endif // WIVLIW_API_EVENTS_HH
