/**
 * @file
 * The generic name -> entry registry underneath every capability
 * axis of the façade (architectures, schedulers, unrolling
 * policies, workloads).
 *
 * Contracts the façade and its tests rely on:
 *  - names are unique; re-registering an existing name is rejected
 *    with AlreadyExists (never silently replaced),
 *  - lookup is exact and case-sensitive ("IPBC" does not resolve an
 *    entry registered as "ipbc"), and stable: the entry returned
 *    for a name never changes once registered,
 *  - iteration order is registration order, so reports and
 *    `--list-*` output over a registry are byte-stable run to run
 *    (built-ins register in the paper's order).
 */

#ifndef WIVLIW_API_REGISTRY_HH
#define WIVLIW_API_REGISTRY_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "api/status.hh"

namespace vliw::api {

template <typename Entry>
class Registry
{
  public:
    /** @param kind noun used in error messages ("architecture"). */
    explicit Registry(std::string kind) : kind_(std::move(kind)) {}

    /** Register @p entry under @p name; rejects duplicates. */
    Status
    add(const std::string &name, Entry entry)
    {
        if (Status s = checkName(name); !s.ok())
            return s;
        entries_.emplace(name, std::move(entry));
        order_.push_back(name);
        return Status();
    }

    /** The entry for @p name, or nullptr when unknown. */
    const Entry *
    find(const std::string &name) const
    {
        auto it = entries_.find(name);
        return it == entries_.end() ? nullptr : &it->second;
    }

    bool contains(const std::string &name) const
    {
        return entries_.count(name) != 0;
    }

    /** Registered names, in registration order. */
    const std::vector<std::string> &names() const { return order_; }

    std::size_t size() const { return order_.size(); }

    /** Comma-joined names for error context / listings. */
    std::string
    joinedNames() const
    {
        std::string out;
        for (const std::string &name : order_)
            out += (out.empty() ? "" : ", ") + name;
        return out;
    }

    /** The uniform unknown-name error with the valid names. */
    Status
    unknown(const std::string &name) const
    {
        return Status::notFound(
            "unknown " + kind_ + " '" + name + "'", joinedNames());
    }

    const std::string &kind() const { return kind_; }

  protected:
    /** Name rules shared by add() and subclasses. */
    Status
    checkName(const std::string &name) const
    {
        if (name.empty()) {
            return Status::invalidArgument(
                "empty " + kind_ + " name");
        }
        if (name.find_first_of(", \t\n:") != std::string::npos) {
            return Status::invalidArgument(
                kind_ + " name '" + name +
                "' may not contain commas, colons or whitespace");
        }
        if (contains(name)) {
            return Status::error(
                StatusCode::AlreadyExists,
                kind_ + " '" + name + "' is already registered");
        }
        return Status();
    }

  private:
    std::string kind_;
    std::vector<std::string> order_;
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace vliw::api

#endif // WIVLIW_API_REGISTRY_HH
