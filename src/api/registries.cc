#include "registries.hh"

#include <cctype>
#include <limits>

#include "workloads/mediabench.hh"

namespace vliw::api {

// ---- architectures ---------------------------------------------------

Status
ArchRegistry::add(const std::string &name, MachineConfig config,
                  std::string description)
{
    const std::string problem = config.check();
    if (!problem.empty()) {
        return Status::invalidArgument(
            "architecture '" + name + "' is inconsistent: " +
            problem);
    }
    return add(name,
               ArchEntry{[config]() { return config; },
                         std::move(description)});
}

namespace {

/**
 * Parse "<letters><digits>[k]" into a non-negative int; false on
 * any other shape or on values that do not fit (truncating to int
 * would silently turn an out-of-range request into a valid-looking
 * geometry, breaking the promise that inconsistent keys come back
 * as InvalidArgument).
 */
bool
splitModifier(const std::string &token, std::string &prefix,
              int &value)
{
    std::size_t i = 0;
    while (i < token.size() &&
           std::isalpha(static_cast<unsigned char>(token[i])))
        ++i;
    if (i == 0 || i == token.size())
        return false;
    prefix = token.substr(0, i);

    long long v = 0;
    std::size_t j = i;
    while (j < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[j]))) {
        v = v * 10 + (token[j] - '0');
        if (v > std::numeric_limits<int>::max())
            return false;
        ++j;
    }
    if (j == i)
        return false;
    if (j + 1 == token.size() &&
        (token[j] == 'k' || token[j] == 'K')) {
        // The KiB suffix only means something for byte counts;
        // accepting "l1k" as a 1024-cycle latency would turn a
        // typo into wrong experiment data instead of an error.
        if (prefix != "b")
            return false;
        v *= 1024;
    } else if (j != token.size())
        return false;
    if (v > std::numeric_limits<int>::max())
        return false;
    value = int(v);
    return true;
}

constexpr const char *kModifierGrammar =
    "modifiers: c<clusters> i<interleave-bytes> b<cache-bytes>[k] "
    "w<ways> ab<entries> l<unified-latency> r<regs>";

Status
applyModifier(MachineConfig &cfg, const std::string &key,
              const std::string &token)
{
    std::string prefix;
    int value = 0;
    if (!splitModifier(token, prefix, value)) {
        return Status::invalidArgument(
            "malformed modifier '" + token +
            "' in architecture key '" + key + "'",
            kModifierGrammar);
    }
    if (prefix == "c")
        cfg.numClusters = value;
    else if (prefix == "i")
        cfg.interleaveBytes = value;
    else if (prefix == "b")
        cfg.cacheBytes = value;
    else if (prefix == "w")
        cfg.cacheWays = value;
    else if (prefix == "ab") {
        cfg.attractionBuffers = value > 0;
        if (value > 0)
            cfg.abEntries = value;
    } else if (prefix == "l")
        cfg.latUnified = value;
    else if (prefix == "r")
        cfg.regsPerCluster = value;
    else {
        return Status::invalidArgument(
            "unknown modifier '" + token +
            "' in architecture key '" + key + "'",
            kModifierGrammar);
    }
    return Status();
}

} // namespace

Result<MachineConfig>
ArchRegistry::resolve(const std::string &key) const
{
    const std::size_t colon = key.find(':');
    const std::string base =
        colon == std::string::npos ? key : key.substr(0, colon);

    const ArchEntry *entry = find(base);
    if (!entry)
        return unknown(base);

    MachineConfig cfg = entry->factory();
    std::size_t pos = colon;
    while (pos != std::string::npos) {
        const std::size_t next = key.find(':', pos + 1);
        const std::string token =
            next == std::string::npos
                ? key.substr(pos + 1)
                : key.substr(pos + 1, next - pos - 1);
        if (token.empty()) {
            return Status::invalidArgument(
                "empty modifier in architecture key '" + key + "'",
                kModifierGrammar);
        }
        if (Status s = applyModifier(cfg, key, token); !s.ok())
            return s;
        pos = next;
    }

    const std::string problem = cfg.check();
    if (!problem.empty()) {
        return Status::invalidArgument(
            "architecture '" + key + "' is inconsistent: " + problem);
    }
    return cfg;
}

// ---- schedulers ------------------------------------------------------

Status
SchedulerRegistry::add(const std::string &name, Heuristic heuristic,
                       std::string description, bool optimal)
{
    return add(name, SchedulerEntry{heuristic,
                                    std::move(description),
                                    optimal});
}

Result<SchedulerChoice>
SchedulerRegistry::resolve(const std::string &key) const
{
    const std::size_t colon = key.find(':');
    const std::string base =
        colon == std::string::npos ? key : key.substr(0, colon);

    const SchedulerEntry *entry = find(base);
    if (!entry)
        return unknown(base);

    SchedulerChoice choice;
    choice.heuristic = entry->heuristic;
    choice.optimal = entry->optimal;
    choice.name = base;
    if (colon == std::string::npos)
        return choice;

    if (!entry->optimal) {
        return Status::invalidArgument(
            "scheduler '" + base + "' does not take budget "
            "modifiers (key '" + key + "')",
            opt::budgetGrammar());
    }
    std::size_t pos = colon;
    while (pos != std::string::npos) {
        const std::size_t next = key.find(':', pos + 1);
        const std::string token =
            next == std::string::npos
                ? key.substr(pos + 1)
                : key.substr(pos + 1, next - pos - 1);
        if (Status s =
                opt::applyBudgetModifier(choice.budget, token, key);
            !s.ok())
            return s;
        pos = next;
    }
    choice.name = opt::canonicalBudgetKey(choice.budget, base);
    return choice;
}

// ---- unrolling policies ----------------------------------------------

Status
UnrollPolicyRegistry::add(const std::string &name,
                          UnrollPolicy policy,
                          std::string description)
{
    return add(name, UnrollEntry{policy, std::move(description)});
}

Result<UnrollPolicy>
UnrollPolicyRegistry::resolve(const std::string &name) const
{
    const UnrollEntry *entry = find(name);
    if (!entry)
        return unknown(name);
    return entry->policy;
}

// ---- workloads -------------------------------------------------------

Status
WorkloadRegistry::add(const std::string &name, BenchmarkSpec spec,
                      std::string description, std::string origin)
{
    spec.name = name;
    auto shared = std::make_shared<const BenchmarkSpec>(
        std::move(spec));
    return add(name,
               WorkloadEntry{[shared]() { return *shared; },
                             std::move(description), shared,
                             std::move(origin)});
}

Result<std::shared_ptr<const BenchmarkSpec>>
WorkloadRegistry::resolve(const std::string &name) const
{
    const WorkloadEntry *entry = find(name);
    if (!entry)
        return unknown(name);
    if (entry->spec)
        return entry->spec;
    return std::make_shared<const BenchmarkSpec>(entry->factory());
}

// ---- seeding ---------------------------------------------------------

Registries
Registries::builtin()
{
    Registries r;
    // The five Table 2 points, in the paper's report order. These
    // registrations cannot fail; assert to keep mistakes loud.
    auto must = [](Status s) {
        vliw_assert(s.ok(), "builtin registration failed: ",
                    s.toString());
    };
    must(r.archs.add("interleaved", MachineConfig::paperInterleaved(),
                     "word-interleaved cache, no Attraction Buffers"));
    must(r.archs.add("interleaved-ab",
                     MachineConfig::paperInterleavedAb(),
                     "word-interleaved cache, 16-entry Attraction "
                     "Buffers"));
    must(r.archs.add("unified1", MachineConfig::paperUnified(1),
                     "unified cache, 1-cycle (optimistic)"));
    must(r.archs.add("unified5", MachineConfig::paperUnified(5),
                     "unified cache, 5-cycle (realistic)"));
    must(r.archs.add("multivliw", MachineConfig::paperMultiVliw(),
                     "coherent per-cluster caches (snoopy MSI)"));

    must(r.schedulers.add("base", Heuristic::Base,
                          "no locality heuristic"));
    must(r.schedulers.add("ibc", Heuristic::Ibc,
                          "Interleaved Build Chains"));
    must(r.schedulers.add("ipbc", Heuristic::Ipbc,
                          "Interleaved Pre-Build Chains"));
    must(r.schedulers.add("optimal", Heuristic::Ipbc,
                          "exact branch-and-bound (IPBC seed), "
                          "budgeted",
                          /*optimal=*/true));

    must(r.unrolls.add("none", UnrollPolicy::None, "no unrolling"));
    must(r.unrolls.add("xN", UnrollPolicy::TimesN,
                       "unroll by the cluster count"));
    must(r.unrolls.add("ouf", UnrollPolicy::Ouf,
                       "optimal unrolling factor"));
    must(r.unrolls.add("selective", UnrollPolicy::Selective,
                       "best of none/xN/ouf by estimated Texec"));

    for (const std::string &name : mediabenchNames()) {
        must(r.workloads.add(
            name,
            WorkloadEntry{[name]() { return makeBenchmark(name); },
                          "Mediabench-like suite (Table 1)",
                          nullptr, "builtin"}));
    }
    return r;
}

const Registries &
builtinRegistries()
{
    static const Registries r = Registries::builtin();
    return r;
}

} // namespace vliw::api
