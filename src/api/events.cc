#include "events.hh"

#include <algorithm>

namespace vliw::api {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::JobAccepted:   return "accepted";
      case EventKind::CellCompiled:  return "cell-compiled";
      case EventKind::CellSimulated: return "cell-simulated";
      case EventKind::CellFailed:    return "cell-failed";
      case EventKind::Progress:      return "progress";
      case EventKind::JobFinished:   return "finished";
    }
    return "?";
}

BoundedEventQueue::BoundedEventQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

void
BoundedEventQueue::handle(const JobEvent &event)
{
    std::unique_lock<std::mutex> lock(mu_);
    notFull_.wait(lock, [this] {
        return closed_ || events_.size() < capacity_;
    });
    if (closed_)
        return;     // shutting down; the consumer is gone
    events_.push_back(event);
    notEmpty_.notify_one();
}

bool
BoundedEventQueue::pop(JobEvent &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    notEmpty_.wait(lock,
                   [this] { return closed_ || !events_.empty(); });
    if (events_.empty())
        return false;
    out = std::move(events_.front());
    events_.pop_front();
    notFull_.notify_one();
    return true;
}

bool
BoundedEventQueue::tryPop(JobEvent &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.empty())
        return false;
    out = std::move(events_.front());
    events_.pop_front();
    notFull_.notify_one();
    return true;
}

void
BoundedEventQueue::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
}

std::size_t
BoundedEventQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

} // namespace vliw::api
