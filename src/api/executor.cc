#include "executor.hh"

#include "support/metrics.hh"

#include <algorithm>
#include <sstream>

namespace vliw::api::detail {

namespace {

/**
 * Executor instrumentation, resolved once. Counters are process
 * monotonic (consumers diff snapshots); gauges mirror the admission
 * atomics so a scrape shows live depth.
 */
struct ExecMetrics
{
    metrics::Counter &jobsSubmitted;
    metrics::Counter &jobsFinished;
    metrics::Counter &jobsCancelled;
    metrics::Counter &shedsJobs;
    metrics::Counter &shedsCells;
    metrics::Counter &deadlineExpired;
    metrics::Counter &cellsRetired;
    metrics::Gauge &queuedCells;
    metrics::Gauge &activeJobs;
    metrics::Histogram &cellUs;
    metrics::Histogram &compileUs;
    metrics::Histogram &simulateUs;
    metrics::Histogram &jobUs;
};

ExecMetrics &
execMetrics()
{
    metrics::Registry &reg = metrics::registry();
    static ExecMetrics m{
        reg.counter("wivliw_jobs_submitted_total"),
        reg.counter("wivliw_jobs_finished_total"),
        reg.counter("wivliw_jobs_cancelled_total"),
        reg.counter("wivliw_admission_sheds_total{kind=\"jobs\"}"),
        reg.counter("wivliw_admission_sheds_total{kind=\"cells\"}"),
        reg.counter("wivliw_deadline_expired_total"),
        reg.counter("wivliw_cells_retired_total"),
        reg.gauge("wivliw_queued_cells"),
        reg.gauge("wivliw_active_jobs"),
        reg.histogram("wivliw_cell_us"),
        reg.histogram("wivliw_compile_us"),
        reg.histogram("wivliw_simulate_us"),
        reg.histogram("wivliw_job_us"),
    };
    return m;
}

/** Count a deadline expiry exactly once per job. */
void
markDeadlineHit(JobCore &core)
{
    if (!core.deadlineHit.exchange(true,
                                   std::memory_order_relaxed))
        execMetrics().deadlineExpired.add();
}

} // namespace

AsyncExecutor::AsyncExecutor(engine::ExperimentEngine &engine,
                             int threads, AdmissionLimits limits)
    : engine_(engine), limits_(limits), pool_(std::max(1, threads))
{
}

AsyncExecutor::~AsyncExecutor()
{
    {
        std::lock_guard<std::mutex> lock(dlMu_);
        dlStop_ = true;
    }
    dlCv_.notify_all();
    if (dlThread_.joinable())
        dlThread_.join();
    // pool_ is the last member: its destructor now drains every
    // queued cell. Deadlines that pass during that drain are not
    // enforced — teardown already implies no one is waiting.
}

void
AsyncExecutor::emit(const std::shared_ptr<JobCore> &core,
                    JobEvent event)
{
    if (!core->sink)
        return;
    event.job = core->id;
    try {
        core->sink->handle(event);
    } catch (...) {
        // A sink that throws broke its own contract; results are
        // never altered by a reporting failure. (An exception from
        // the CellCompiled delivery does fail its cell: that event
        // fires on the cell's execution path, inside
        // runExperiment's catch.)
    }
}

namespace {

Status
overloadedStatus(const char *kind, int depth, int limit)
{
    std::ostringstream msg;
    msg << "session is overloaded: " << depth << " " << kind
        << " queued, limit " << limit << "; retry after backoff";
    std::ostringstream ctx;
    ctx << "kind=" << kind << " depth=" << depth
        << " limit=" << limit;
    return Status::overloaded(msg.str(), ctx.str());
}

} // namespace

std::shared_ptr<JobCore>
AsyncExecutor::submit(std::vector<engine::ExperimentSpec> specs,
                      bool isSweep, const SubmitOptions &opts,
                      Status rejected)
{
    ExecMetrics &em = execMetrics();
    em.jobsSubmitted.add();
    auto core = std::make_shared<JobCore>();
    core->id = nextId_.fetch_add(1, std::memory_order_relaxed);
    core->priority = opts.priority;
    core->maxInFlight = opts.maxInFlight;
    core->sink = opts.events;
    core->isSweep = isSweep;
    core->total = int(specs.size());
    core->submittedAt = std::chrono::steady_clock::now();
    core->specs = std::move(specs);
    core->experiments.resize(core->specs.size());
    for (std::size_t i = 0; i < core->specs.size(); ++i)
        core->experiments[i].spec = core->specs[i];
    if (!opts.clientId.empty()) {
        std::lock_guard<std::mutex> admitLock(admitMu_);
        auto ins = clientKeys_.emplace(opts.clientId, nextClientKey_);
        if (ins.second)
            ++nextClientKey_;
        core->clientKey = ins.first->second;
    }

    // Admission control: a well-formed job must also fit under the
    // session's queue-depth limits or it is shed right here, before
    // anything is enqueued. The check-then-admit step is serialised
    // so two concurrent submits cannot both pass a nearly-full
    // limit; the counters themselves are atomics so the hot retire
    // path never takes admitMu_.
    if (rejected.ok() && core->total > 0) {
        std::lock_guard<std::mutex> admitLock(admitMu_);
        const int jobsNow =
            activeJobs_.load(std::memory_order_relaxed);
        const int cellsNow =
            queuedCells_.load(std::memory_order_relaxed);
        if (limits_.maxQueuedJobs > 0 &&
            jobsNow >= limits_.maxQueuedJobs) {
            rejected = overloadedStatus("jobs", jobsNow,
                                        limits_.maxQueuedJobs);
            em.shedsJobs.add();
        } else if (limits_.maxQueuedCells > 0 &&
                   cellsNow + core->total >
                       limits_.maxQueuedCells) {
            rejected = overloadedStatus("cells", cellsNow,
                                        limits_.maxQueuedCells);
            em.shedsCells.add();
        } else {
            activeJobs_.fetch_add(1, std::memory_order_relaxed);
            queuedCells_.fetch_add(core->total,
                                   std::memory_order_relaxed);
            em.activeJobs.add();
            em.queuedCells.add(core->total);
        }
    }

    JobEvent accepted;
    accepted.kind = EventKind::JobAccepted;
    accepted.progress = Progress{0, core->total};

    if (!rejected.ok() || core->total == 0) {
        // Born done: a rejected request (or an empty grid) still
        // produces the full accepted/finished event envelope so
        // consumers need only one code path.
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        emit(core, accepted);
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->finalStatus = rejected;
            core->cacheAtFinish = engine_.cacheStats();
        }
        JobEvent finished;
        finished.kind = EventKind::JobFinished;
        finished.status = rejected;
        finished.progress = Progress{0, core->total};
        finished.cache = core->cacheAtFinish;
        emit(core, finished);
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->phase = JobPhase::Done;
        }
        core->cv.notify_all();
        em.jobsFinished.add();
        return core;
    }

    if (opts.deadlineMs > 0) {
        core->hasDeadline = true;
        core->deadlineAt =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(opts.deadlineMs);
        armDeadline(core);
    }

    {
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        emit(core, accepted);
    }

    // Admission: enqueue the whole job, or just the first window
    // when capped; runCell tops the window up as cells retire.
    const int window =
        core->maxInFlight > 0
            ? std::min(core->maxInFlight, core->total)
            : core->total;
    {
        std::lock_guard<std::mutex> lock(core->mu);
        core->nextCell = window;
    }
    for (int i = 0; i < window; ++i)
        enqueueCell(core, i);
    return core;
}

void
AsyncExecutor::armDeadline(const std::shared_ptr<JobCore> &core)
{
    std::lock_guard<std::mutex> lock(dlMu_);
    dlQueue_.emplace_back(core->deadlineAt, core);
    if (!dlThread_.joinable())
        dlThread_ = std::thread([this] { watchdogMain(); });
    dlCv_.notify_all();
}

void
AsyncExecutor::watchdogMain()
{
    std::unique_lock<std::mutex> lock(dlMu_);
    while (!dlStop_) {
        if (dlQueue_.empty()) {
            dlCv_.wait(lock, [this] {
                return dlStop_ || !dlQueue_.empty();
            });
            continue;
        }
        auto earliest = dlQueue_.front().first;
        for (const auto &entry : dlQueue_)
            earliest = std::min(earliest, entry.first);
        dlCv_.wait_until(lock, earliest);
        if (dlStop_)
            break;

        const auto now = std::chrono::steady_clock::now();
        std::vector<std::shared_ptr<JobCore>> fired;
        auto keep = dlQueue_.begin();
        for (auto &entry : dlQueue_) {
            if (entry.first > now) {
                *keep++ = std::move(entry);
                continue;
            }
            if (auto core = entry.second.lock())
                fired.push_back(std::move(core));
            // Dead weak_ptrs (job already destroyed) just drop.
        }
        dlQueue_.erase(keep, dlQueue_.end());

        // Fire outside dlMu_: coreCancel takes the job's own mutex
        // and nothing here may nest the two.
        lock.unlock();
        for (const auto &core : fired) {
            if (corePoll(*core) == JobPhase::Done)
                continue;
            // deadlineHit first: the epilogue reads it only after
            // observing the cancel flag's effects.
            markDeadlineHit(*core);
            coreCancel(*core);
        }
        lock.lock();
    }
}

void
AsyncExecutor::enqueueCell(const std::shared_ptr<JobCore> &core,
                           int cell)
{
    pool_.submit([this, core, cell] { runCell(core, cell); },
                 core->priority, core->clientKey);
}

void
AsyncExecutor::runCell(const std::shared_ptr<JobCore> &core, int cell)
{
    {
        std::lock_guard<std::mutex> lock(core->mu);
        if (core->phase == JobPhase::Queued)
            core->phase = JobPhase::Running;
    }

    // Belt-and-braces deadline check: a cell that waited in the
    // queue past the deadline must not start even if the watchdog
    // has not fired yet.
    if (core->hasDeadline &&
        !core->cancelRequested.load(std::memory_order_relaxed) &&
        std::chrono::steady_clock::now() >= core->deadlineAt) {
        markDeadlineHit(*core);
        coreCancel(*core);
    }

    ExecMetrics &em = execMetrics();
    engine::ExperimentResult result;
    if (core->cancelRequested.load(std::memory_order_relaxed)) {
        // Cancelled before this cell started: retire it as a skip
        // so accounting reaches the total and the job finishes.
        result.spec = core->specs[std::size_t(cell)];
        result.cancelled = true;
        result.error = "cancelled before start";
    } else {
        engine::RunHooks hooks;
        hooks.cancel = &core->cancelRequested;
        hooks.compiled = [&](const engine::ExperimentResult &r) {
            if (!core->sink)
                return;
            JobEvent ev;
            ev.kind = EventKind::CellCompiled;
            ev.job = core->id;
            ev.cell = std::size_t(cell);
            ev.label = r.spec.label();
            ev.solver = r.solverOutcome;
            std::lock_guard<std::mutex> emitLock(core->emitMu);
            // Deliberately unabsorbed: this delivery runs on the
            // cell's execution path, so a sink that throws fails
            // the cell as Internal (see EventSink's contract).
            core->sink->handle(ev);
        };
        engine::CompileCache *cache =
            engine_.options().compileCache ? &engine_.cache()
                                           : nullptr;
        // runExperiment never throws std exceptions past its own
        // catch; this backstop covers everything else (a sink
        // throwing a non-std type from the CellCompiled delivery)
        // so the cell ALWAYS retires — a lost retirement would
        // leave done < total and wedge wait() forever.
        const auto cellStart = std::chrono::steady_clock::now();
        try {
            result = engine::runExperiment(
                core->specs[std::size_t(cell)], cache, &hooks);
        } catch (...) {
            result.spec = core->specs[std::size_t(cell)];
            result.error = "internal: exception escaped cell "
                           "execution";
            result.datasetRuns.clear();
        }
        em.cellUs.observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - cellStart)
                .count());
        em.compileUs.observe(result.compileMs * 1e3);
        em.simulateUs.observe(result.simulateMs * 1e3);
    }
    em.cellsRetired.add();

    // Retire the cell: slot write, progress, events and (for the
    // last cell) the job epilogue happen under emitMu so the sink
    // sees one ordered, consistent stream per job.
    int topUp = -1;
    {
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        bool last = false;
        Progress progress;
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->experiments[std::size_t(cell)] = std::move(result);
            core->done += 1;
            progress = Progress{core->done, core->total};
            last = core->done == core->total;
            if (!last && core->maxInFlight > 0 &&
                core->nextCell < core->total) {
                topUp = core->nextCell++;
            }
        }
        queuedCells_.fetch_sub(1, std::memory_order_relaxed);
        em.queuedCells.sub();
        if (last) {
            activeJobs_.fetch_sub(1, std::memory_order_relaxed);
            em.activeJobs.sub();
        }

        // Event construction allocates (labels, stats copies); a
        // bad_alloc here must not skip the accounting below or the
        // job would never reach Done. Reporting is best-effort,
        // liveness is not.
        try {
            const engine::ExperimentResult &retired =
                core->experiments[std::size_t(cell)];
            if (!retired.failed()) {
                JobEvent ev;
                ev.kind = EventKind::CellSimulated;
                ev.cell = std::size_t(cell);
                ev.label = retired.spec.label();
                ev.progress = progress;
                emit(core, ev);
            } else if (!retired.cancelled) {
                JobEvent ev;
                ev.kind = EventKind::CellFailed;
                ev.cell = std::size_t(cell);
                ev.label = retired.spec.label();
                ev.status = cellStatus(retired);
                ev.progress = progress;
                emit(core, ev);
            }
            // Skipped (cancelled) cells advance progress silently.
            JobEvent tick;
            tick.kind = EventKind::Progress;
            tick.progress = progress;
            emit(core, tick);
        } catch (...) {
        }

        if (last) {
            try {
                const bool deadline = core->deadlineHit.load(
                    std::memory_order_relaxed);
                const bool cancelled = core->cancelRequested.load(
                    std::memory_order_relaxed);
                Status final =
                    deadline
                        ? Status::deadlineExceeded(
                              "job deadline exceeded; partial "
                              "results kept")
                        : cancelled
                            ? Status::cancelled(
                                  "job cancelled; partial results "
                                  "kept")
                            : Status();
                em.jobsFinished.add();
                if (!deadline && cancelled)
                    em.jobsCancelled.add();
                em.jobUs.observe(
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() -
                        core->submittedAt)
                        .count());
                JobEvent finished;
                finished.kind = EventKind::JobFinished;
                finished.status = final;
                finished.progress = progress;
                finished.cache = engine_.cacheStats();
                {
                    std::lock_guard<std::mutex> lock(core->mu);
                    core->finalStatus = final;
                    core->cacheAtFinish = finished.cache;
                }
                emit(core, finished);
            } catch (...) {
            }
            {
                std::lock_guard<std::mutex> lock(core->mu);
                core->phase = JobPhase::Done;
            }
            core->cv.notify_all();
        }
    }
    if (topUp >= 0)
        enqueueCell(core, topUp);
}

void
AsyncExecutor::ensureThreads(int threads)
{
    pool_.ensureThreads(threads);
}

} // namespace vliw::api::detail
