#include "executor.hh"

#include <algorithm>

namespace vliw::api::detail {

AsyncExecutor::AsyncExecutor(engine::ExperimentEngine &engine,
                             int threads)
    : engine_(engine), pool_(std::max(1, threads))
{
}

void
AsyncExecutor::emit(const std::shared_ptr<JobCore> &core,
                    JobEvent event)
{
    if (!core->sink)
        return;
    event.job = core->id;
    try {
        core->sink->handle(event);
    } catch (...) {
        // A sink that throws broke its own contract; results are
        // never altered by a reporting failure. (An exception from
        // the CellCompiled delivery does fail its cell: that event
        // fires on the cell's execution path, inside
        // runExperiment's catch.)
    }
}

std::shared_ptr<JobCore>
AsyncExecutor::submit(std::vector<engine::ExperimentSpec> specs,
                      bool isSweep, const SubmitOptions &opts,
                      Status rejected)
{
    auto core = std::make_shared<JobCore>();
    core->id = nextId_.fetch_add(1, std::memory_order_relaxed);
    core->priority = opts.priority;
    core->maxInFlight = opts.maxInFlight;
    core->sink = opts.events;
    core->isSweep = isSweep;
    core->total = int(specs.size());
    core->specs = std::move(specs);
    core->experiments.resize(core->specs.size());
    for (std::size_t i = 0; i < core->specs.size(); ++i)
        core->experiments[i].spec = core->specs[i];

    JobEvent accepted;
    accepted.kind = EventKind::JobAccepted;
    accepted.progress = Progress{0, core->total};

    if (!rejected.ok() || core->total == 0) {
        // Born done: a rejected request (or an empty grid) still
        // produces the full accepted/finished event envelope so
        // consumers need only one code path.
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        emit(core, accepted);
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->finalStatus = rejected;
            core->cacheAtFinish = engine_.cacheStats();
        }
        JobEvent finished;
        finished.kind = EventKind::JobFinished;
        finished.status = rejected;
        finished.progress = Progress{0, core->total};
        finished.cache = core->cacheAtFinish;
        emit(core, finished);
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->phase = JobPhase::Done;
        }
        core->cv.notify_all();
        return core;
    }

    {
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        emit(core, accepted);
    }

    // Admission: enqueue the whole job, or just the first window
    // when capped; runCell tops the window up as cells retire.
    const int window =
        core->maxInFlight > 0
            ? std::min(core->maxInFlight, core->total)
            : core->total;
    {
        std::lock_guard<std::mutex> lock(core->mu);
        core->nextCell = window;
    }
    for (int i = 0; i < window; ++i)
        enqueueCell(core, i);
    return core;
}

void
AsyncExecutor::enqueueCell(const std::shared_ptr<JobCore> &core,
                           int cell)
{
    pool_.submit([this, core, cell] { runCell(core, cell); },
                 core->priority);
}

void
AsyncExecutor::runCell(const std::shared_ptr<JobCore> &core, int cell)
{
    {
        std::lock_guard<std::mutex> lock(core->mu);
        if (core->phase == JobPhase::Queued)
            core->phase = JobPhase::Running;
    }

    engine::ExperimentResult result;
    if (core->cancelRequested.load(std::memory_order_relaxed)) {
        // Cancelled before this cell started: retire it as a skip
        // so accounting reaches the total and the job finishes.
        result.spec = core->specs[std::size_t(cell)];
        result.cancelled = true;
        result.error = "cancelled before start";
    } else {
        engine::RunHooks hooks;
        hooks.cancel = &core->cancelRequested;
        hooks.compiled = [&](const engine::ExperimentResult &r) {
            if (!core->sink)
                return;
            JobEvent ev;
            ev.kind = EventKind::CellCompiled;
            ev.job = core->id;
            ev.cell = std::size_t(cell);
            ev.label = r.spec.label();
            std::lock_guard<std::mutex> emitLock(core->emitMu);
            // Deliberately unabsorbed: this delivery runs on the
            // cell's execution path, so a sink that throws fails
            // the cell as Internal (see EventSink's contract).
            core->sink->handle(ev);
        };
        engine::CompileCache *cache =
            engine_.options().compileCache ? &engine_.cache()
                                           : nullptr;
        // runExperiment never throws std exceptions past its own
        // catch; this backstop covers everything else (a sink
        // throwing a non-std type from the CellCompiled delivery)
        // so the cell ALWAYS retires — a lost retirement would
        // leave done < total and wedge wait() forever.
        try {
            result = engine::runExperiment(
                core->specs[std::size_t(cell)], cache, &hooks);
        } catch (...) {
            result.spec = core->specs[std::size_t(cell)];
            result.error = "internal: exception escaped cell "
                           "execution";
            result.datasetRuns.clear();
        }
    }

    // Retire the cell: slot write, progress, events and (for the
    // last cell) the job epilogue happen under emitMu so the sink
    // sees one ordered, consistent stream per job.
    int topUp = -1;
    {
        std::lock_guard<std::mutex> emitLock(core->emitMu);
        bool last = false;
        Progress progress;
        {
            std::lock_guard<std::mutex> lock(core->mu);
            core->experiments[std::size_t(cell)] = std::move(result);
            core->done += 1;
            progress = Progress{core->done, core->total};
            last = core->done == core->total;
            if (!last && core->maxInFlight > 0 &&
                core->nextCell < core->total) {
                topUp = core->nextCell++;
            }
        }

        // Event construction allocates (labels, stats copies); a
        // bad_alloc here must not skip the accounting below or the
        // job would never reach Done. Reporting is best-effort,
        // liveness is not.
        try {
            const engine::ExperimentResult &retired =
                core->experiments[std::size_t(cell)];
            if (!retired.failed()) {
                JobEvent ev;
                ev.kind = EventKind::CellSimulated;
                ev.cell = std::size_t(cell);
                ev.label = retired.spec.label();
                ev.progress = progress;
                emit(core, ev);
            } else if (!retired.cancelled) {
                JobEvent ev;
                ev.kind = EventKind::CellFailed;
                ev.cell = std::size_t(cell);
                ev.label = retired.spec.label();
                ev.status = cellStatus(retired);
                ev.progress = progress;
                emit(core, ev);
            }
            // Skipped (cancelled) cells advance progress silently.
            JobEvent tick;
            tick.kind = EventKind::Progress;
            tick.progress = progress;
            emit(core, tick);
        } catch (...) {
        }

        if (last) {
            try {
                const bool cancelled = core->cancelRequested.load(
                    std::memory_order_relaxed);
                Status final =
                    cancelled
                        ? Status::cancelled(
                              "job cancelled; partial results kept")
                        : Status();
                JobEvent finished;
                finished.kind = EventKind::JobFinished;
                finished.status = final;
                finished.progress = progress;
                finished.cache = engine_.cacheStats();
                {
                    std::lock_guard<std::mutex> lock(core->mu);
                    core->finalStatus = final;
                    core->cacheAtFinish = finished.cache;
                }
                emit(core, finished);
            } catch (...) {
            }
            {
                std::lock_guard<std::mutex> lock(core->mu);
                core->phase = JobPhase::Done;
            }
            core->cv.notify_all();
        }
    }
    if (topUp >= 0)
        enqueueCell(core, topUp);
}

void
AsyncExecutor::ensureThreads(int threads)
{
    pool_.ensureThreads(threads);
}

} // namespace vliw::api::detail
