/**
 * @file
 * Job handles for asynchronous submission (api::Session::submit):
 * SubmitOptions carries the scheduling knobs (priority, event
 * sink, admission cap), JobHandle<T> is the caller's view of one
 * in-flight job — wait()/poll()/cancel() and a one-shot
 * Result<T> take().
 *
 * Cancellation is cooperative: cancel() raises a flag the workers
 * check between the compile and simulate phases of every cell and
 * inside the scheduler's II-retry loop. No in-flight work is
 * interrupted mid-phase; cells that already completed stay valid,
 * cells that never started are skipped, and the job finishes with
 * StatusCode::Cancelled carrying the partial results.
 */

#ifndef WIVLIW_API_JOBS_HH
#define WIVLIW_API_JOBS_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/events.hh"
#include "engine/experiment.hh"

namespace vliw::api {

struct RunResult;
struct SweepResult;

/** Lifecycle of one submitted job, as reported by poll(). */
enum class JobPhase
{
    /** Accepted; no cell has started executing yet. */
    Queued,
    /** At least one cell is executing or retired. */
    Running,
    /** cancel() was requested and the job is still draining. */
    Cancelling,
    /** All cells retired; take() will not block. */
    Done,
};

const char *jobPhaseName(JobPhase phase);

/** Per-submission scheduling knobs. */
struct SubmitOptions
{
    /**
     * Higher-priority jobs' cells run before lower-priority work
     * still queued on the session's pool (FIFO within a
     * priority). Priorities change only *when* cells execute,
     * never their results.
     */
    int priority = 0;
    /**
     * Receiver for this job's event stream (see events.hh); null
     * means no events. Borrowed — must outlive the job.
     */
    EventSink *events = nullptr;
    /**
     * Admission control: at most this many of the job's cells are
     * in the session's queue/workers at once (0 = no per-job cap),
     * so one huge sweep cannot monopolise a shared serving
     * session's pool.
     */
    int maxInFlight = 0;
    /**
     * Wall-clock budget for the whole job (0 = none). Enforced
     * cooperatively through the same flag cancel() raises: workers
     * check it between the compile and simulate phases and inside
     * the scheduler's II-retry loop, so no cell is interrupted
     * mid-phase. Cells that finished in time stay valid and the job
     * completes with StatusCode::DeadlineExceeded.
     */
    int deadlineMs = 0;
    /**
     * Fairness key: jobs sharing a client id share one FIFO lane,
     * and the pool round-robins across lanes within a priority
     * band, so one greedy client's backlog interleaves with other
     * clients' work instead of starving it. Empty (the default)
     * is the shared anonymous lane — single-client workloads keep
     * the classic priority-then-FIFO order exactly. Scheduling
     * only; never affects any result value.
     */
    std::string clientId;
};

namespace detail {

/**
 * Shared state of one job; owned jointly by the session's executor
 * and every JobHandle. Lock order: emitMu before mu. `emitMu`
 * serialises event delivery with the progress counters so sinks
 * observe a consistent, ordered stream; `mu` guards the mutable
 * fields and pairs with `cv` for wait().
 */
struct JobCore
{
    JobId id = 0;
    int priority = 0;
    int maxInFlight = 0;
    EventSink *sink = nullptr;
    bool isSweep = false;
    int total = 0;
    /** Interned fairness lane (0 = anonymous), set at admission. */
    std::uint64_t clientKey = 0;
    /** Admission timestamp; feeds the wivliw_job_us histogram. */
    std::chrono::steady_clock::time_point submittedAt{};

    /** The cooperative cancellation flag the workers poll. */
    std::atomic<bool> cancelRequested{false};
    /** Set by the deadline watchdog before it raises the cancel
     *  flag, so the epilogue can tell a deadline from a cancel. */
    std::atomic<bool> deadlineHit{false};
    /** Absolute deadline; meaningful only when hasDeadline. */
    std::chrono::steady_clock::time_point deadlineAt{};
    bool hasDeadline = false;

    std::mutex emitMu;
    mutable std::mutex mu;
    std::condition_variable cv;
    JobPhase phase = JobPhase::Queued;
    int done = 0;
    /** Next cell index not yet handed to the pool. */
    int nextCell = 0;
    std::vector<engine::ExperimentSpec> specs;
    /** One slot per cell, written only by the cell's worker. */
    std::vector<engine::ExperimentResult> experiments;
    engine::CompileCacheStats cacheAtFinish;
    Status finalStatus;
    bool taken = false;
};

void coreWait(JobCore &core);
bool coreWaitFor(JobCore &core, std::chrono::milliseconds timeout);
JobPhase corePoll(const JobCore &core);
Progress coreProgress(const JobCore &core);
void coreCancel(JobCore &core);
std::optional<Status> coreFinalStatus(const JobCore &core);

/** Map one retired cell to the Status a caller would see. */
Status cellStatus(const engine::ExperimentResult &result);

template <typename T> Result<T> coreTake(JobCore &core);
template <> Result<RunResult> coreTake<RunResult>(JobCore &core);
template <> Result<SweepResult> coreTake<SweepResult>(JobCore &core);

} // namespace detail

/**
 * The caller's view of one submitted job. Cheap to copy (shared
 * state); valid() is false only for a default-constructed handle.
 * T is RunResult or SweepResult, matching the request submitted.
 */
template <typename T>
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return core_ != nullptr; }

    /** The session-scoped job id (also on every event). */
    JobId
    id() const
    {
        return core_ ? core_->id : 0;
    }

    /**
     * Block until the job is done (including the delivery of its
     * JobFinished event). Chainable: submit(r).wait().take().
     */
    JobHandle &
    wait()
    {
        detail::coreWait(*core_);
        return *this;
    }

    /** wait() with a timeout; true when the job is done. */
    bool
    waitFor(std::chrono::milliseconds timeout)
    {
        return detail::coreWaitFor(*core_, timeout);
    }

    /** Non-blocking lifecycle probe. */
    JobPhase
    poll() const
    {
        return detail::corePoll(*core_);
    }

    /** Cells retired so far / total. */
    Progress
    progress() const
    {
        return detail::coreProgress(*core_);
    }

    /**
     * Request cooperative cancellation (idempotent, never blocks).
     * Already-completed cells stay valid; take() returns the
     * partial results with StatusCode::Cancelled.
     */
    void
    cancel()
    {
        detail::coreCancel(*core_);
    }

    /**
     * Peek at the job's final Status without consuming the result:
     * nullopt while the job is still running, the terminal Status
     * once it is Done. Lets a server distinguish an admission
     * rejection (StatusCode::Overloaded on a born-done job) from a
     * job it should track, before any take().
     */
    std::optional<Status>
    finalStatus() const
    {
        return detail::coreFinalStatus(*core_);
    }

    /**
     * Wait for completion and move the result out (one-shot; a
     * second take comes back FailedPrecondition). A cancelled
     * sweep yields an Ok Result whose SweepResult::status is
     * Cancelled next to the valid partial cells.
     */
    Result<T>
    take()
    {
        wait();
        return detail::coreTake<T>(*core_);
    }

  private:
    friend class Session;
    explicit JobHandle(std::shared_ptr<detail::JobCore> core)
        : core_(std::move(core))
    {
    }

    std::shared_ptr<detail::JobCore> core_;
};

} // namespace vliw::api

#endif // WIVLIW_API_JOBS_HH
