/**
 * @file
 * The four capability registries behind the façade. Each replaces a
 * formerly closed axis — architectures (a private table inside
 * `engine::findArch`), schedulers (`enum class Heuristic`),
 * unrolling (`UnrollPolicy`), workloads (whatever `mediabench.cc`
 * hard-codes) — with an open, name-keyed registry that is seeded
 * with the paper's entries and accepts user registrations.
 *
 * `Registries::builtin()` returns a fresh set carrying only the
 * built-ins; `builtinRegistries()` is the shared immutable copy the
 * engine's name-resolution helpers consult. An `api::Session` owns
 * a mutable set of its own, so user registrations are scoped to the
 * session that made them.
 */

#ifndef WIVLIW_API_REGISTRIES_HH
#define WIVLIW_API_REGISTRIES_HH

#include <functional>
#include <memory>
#include <string>

#include "api/registry.hh"
#include "machine/machine_config.hh"
#include "opt/budget.hh"
#include "sched/scheduler.hh"
#include "sched/unroll_policy.hh"
#include "workloads/loop_spec.hh"

namespace vliw::api {

// ---- architectures ---------------------------------------------------

/** One registered architecture: a named MachineConfig factory. */
struct ArchEntry
{
    std::function<MachineConfig()> factory;
    std::string description;
};

/**
 * Named machine configurations, plus a parametric key grammar for
 * one-off variants: `base:mod:mod...` applies modifiers to a
 * registered base, e.g. `interleaved:c8:b16k` is the interleaved
 * configuration with 8 clusters and a 16 KiB cache. Modifiers:
 *
 *   c<N>   numClusters          i<N>   interleaveBytes
 *   b<N>[k] cacheBytes (k=KiB)  w<N>   cacheWays
 *   ab<N>  Attraction Buffers with N entries (ab0 disables)
 *   l<N>   latUnified           r<N>   regsPerCluster
 *
 * Every resolved configuration (exact or parametric) is checked
 * with MachineConfig::check(); inconsistent geometry comes back as
 * an InvalidArgument Status, never a process exit.
 */
class ArchRegistry : public Registry<ArchEntry>
{
  public:
    ArchRegistry() : Registry("architecture") {}

    /** Register a fixed configuration under @p name. */
    Status add(const std::string &name, MachineConfig config,
               std::string description = "");
    using Registry::add;

    /** Resolve an exact name or a parametric `base:mod...` key. */
    Result<MachineConfig> resolve(const std::string &key) const;
};

// ---- schedulers ------------------------------------------------------

/**
 * One registered scheduling strategy. Every entry drives the shared
 * SchedWorkspace-reusing modulo-scheduling kernel; `heuristic`
 * selects its memory-instruction cluster-assignment strategy, so a
 * custom registration is a named alias over one of the kernel
 * strategies (a later PR opens the kernel itself).
 */
struct SchedulerEntry
{
    Heuristic heuristic = Heuristic::Base;
    std::string description;
    /**
     * Entry drives the exact solver (src/opt) seeded by `heuristic`,
     * and its key accepts the `:b<N>ms` / `:n<N>` budget modifiers.
     */
    bool optimal = false;
};

/**
 * A fully resolved scheduler key: which kernel strategy to run and,
 * for `optimal` arms, the parsed search budget plus the canonical
 * key the choice serializes/reports under (`optimal:b5000ms:n1e7`
 * style — plain digits, defaults omitted).
 */
struct SchedulerChoice
{
    Heuristic heuristic = Heuristic::Ipbc;
    bool optimal = false;
    opt::SolverBudget budget;
    std::string name;
};

class SchedulerRegistry : public Registry<SchedulerEntry>
{
  public:
    SchedulerRegistry() : Registry("heuristic") {}

    Status add(const std::string &name, Heuristic heuristic,
               std::string description = "",
               bool optimal = false);
    using Registry::add;

    /**
     * Resolve an exact name or, for optimal entries, a parametric
     * `optimal[:b<N>ms][:n<N>]` budget key. Budget modifiers on a
     * plain heuristic come back as InvalidArgument with the grammar
     * as context.
     */
    Result<SchedulerChoice> resolve(const std::string &key) const;
};

// ---- unrolling policies ----------------------------------------------

struct UnrollEntry
{
    UnrollPolicy policy = UnrollPolicy::None;
    std::string description;
};

class UnrollPolicyRegistry : public Registry<UnrollEntry>
{
  public:
    UnrollPolicyRegistry() : Registry("unroll policy") {}

    Status add(const std::string &name, UnrollPolicy policy,
               std::string description = "");
    using Registry::add;

    Result<UnrollPolicy> resolve(const std::string &name) const;
};

// ---- workloads -------------------------------------------------------

/** One registered workload: a named BenchmarkSpec factory. */
struct WorkloadEntry
{
    std::function<BenchmarkSpec()> factory;
    std::string description;
    /**
     * Set for workloads registered from an already-built spec:
     * resolve() hands this immutable instance out directly instead
     * of copying through the factory.
     */
    std::shared_ptr<const BenchmarkSpec> spec;
    /**
     * Where the workload came from: "builtin" (compiled-in suite),
     * "file" (--bench-file), "wire" (daemon register-workload op)
     * or "custom" (library registration). `--list-benches` prints
     * this as its source column.
     */
    std::string origin = "custom";
};

class WorkloadRegistry : public Registry<WorkloadEntry>
{
  public:
    WorkloadRegistry() : Registry("benchmark") {}

    /**
     * Register a synthetic workload from an already-built spec
     * (e.g. LoopSpecs assembled with KernelBuilder). The spec's
     * name is forced to @p name so reports and compile-cache keys
     * agree with the registry.
     */
    Status add(const std::string &name, BenchmarkSpec spec,
               std::string description = "",
               std::string origin = "custom");
    using Registry::add;

    /** Build the named workload (shared so grids resolve once). */
    Result<std::shared_ptr<const BenchmarkSpec>>
    resolve(const std::string &name) const;
};

// ---- the full set ----------------------------------------------------

/** Every capability axis the façade resolves names through. */
struct Registries
{
    ArchRegistry archs;
    SchedulerRegistry schedulers;
    UnrollPolicyRegistry unrolls;
    WorkloadRegistry workloads;

    /**
     * A fresh set seeded with the paper's entries: the five Table 2
     * architectures, BASE/IBC/IPBC, the four unrolling policies and
     * the 14-benchmark Mediabench-like suite.
     */
    static Registries builtin();
};

/** The shared immutable built-in set (engine name resolution). */
const Registries &builtinRegistries();

} // namespace vliw::api

#endif // WIVLIW_API_REGISTRIES_HH
