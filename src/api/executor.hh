/**
 * @file
 * The session's asynchronous executor (internal): one shared
 * priority-aware WorkerPool that multiplexes every submitted job's
 * cells, plus the per-job bookkeeping that turns retired cells
 * into the ordered event stream and the final JobCore state.
 *
 * Scheduling model: a job's cells enter the pool at the job's
 * priority (higher first, FIFO within a priority). An admission
 * cap (SubmitOptions::maxInFlight) enqueues only that many cells
 * up front and tops the window up as cells retire, so a huge sweep
 * cannot starve later, higher-priority submissions. Cancellation
 * is observed cooperatively by every cell; queued cells of a
 * cancelled job drain as cheap skips so accounting always reaches
 * the total. None of this machinery can change a result value:
 * cells write only their own slot and derive all randomness from
 * their spec (the engine's determinism contract).
 *
 * Overload safety: session-wide admission limits
 * (AdmissionLimits, wired from SessionOptions) bound how much work
 * may be queued at once. A submission over the limit is born Done
 * with StatusCode::Overloaded — nothing is enqueued — so a serving
 * frontend sheds load with a structured error instead of buffering
 * without bound. Deadlines (SubmitOptions::deadlineMs) are
 * enforced by a lazily-started watchdog thread that raises the
 * job's cooperative cancel flag when the deadline passes; the
 * normal cancel drain then finishes the job with
 * StatusCode::DeadlineExceeded and its partial results.
 */

#ifndef WIVLIW_API_EXECUTOR_HH
#define WIVLIW_API_EXECUTOR_HH

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/jobs.hh"
#include "engine/engine.hh"
#include "engine/worker_pool.hh"

namespace vliw::api::detail {

/** Session-wide queue-depth bounds; 0 disables a limit. */
struct AdmissionLimits
{
    /** Max unretired cells across all admitted jobs. */
    int maxQueuedCells = 0;
    /** Max jobs admitted but not yet Done. */
    int maxQueuedJobs = 0;
};

class AsyncExecutor
{
  public:
    AsyncExecutor(engine::ExperimentEngine &engine, int threads,
                  AdmissionLimits limits = {});

    /** Drains every queued cell, then joins the pool. */
    ~AsyncExecutor();

    /**
     * Admit one job over @p specs (already validated/resolved).
     * When @p rejected is an error the job is born Done carrying
     * it — submission itself never fails, bad requests surface
     * through take() and the JobFinished event. An over-limit
     * submission is born Done with StatusCode::Overloaded the same
     * way.
     */
    std::shared_ptr<JobCore>
    submit(std::vector<engine::ExperimentSpec> specs, bool isSweep,
           const SubmitOptions &opts, Status rejected = Status());

    /** Grow the shared pool (never shrinks). */
    void ensureThreads(int threads);

    int threadCount() const { return pool_.threadCount(); }

    /** Unretired cells across admitted jobs (observability). */
    int queuedCells() const
    {
        return queuedCells_.load(std::memory_order_relaxed);
    }

    /** Admitted jobs not yet Done (observability). */
    int activeJobs() const
    {
        return activeJobs_.load(std::memory_order_relaxed);
    }

  private:
    void runCell(const std::shared_ptr<JobCore> &core, int cell);
    void enqueueCell(const std::shared_ptr<JobCore> &core, int cell);
    /** Deliver one event, absorbing sink exceptions. */
    static void emit(const std::shared_ptr<JobCore> &core,
                     JobEvent event);
    /** Register @p core with the deadline watchdog. */
    void armDeadline(const std::shared_ptr<JobCore> &core);
    void watchdogMain();

    engine::ExperimentEngine &engine_;
    std::atomic<JobId> nextId_{1};

    const AdmissionLimits limits_;
    /** Serialises the check-then-admit step so concurrent submits
     *  cannot both squeeze past a nearly-full limit. */
    std::mutex admitMu_;
    std::atomic<int> queuedCells_{0};
    std::atomic<int> activeJobs_{0};

    /** Fairness lanes: client id string -> stable pool key. Interned
     *  under admitMu_ on the submit path only. */
    std::map<std::string, std::uint64_t> clientKeys_;
    std::uint64_t nextClientKey_ = 1;

    /** Deadline watchdog: jobs with a deadline, earliest first.
     *  The thread starts lazily on the first armed deadline and is
     *  joined by the destructor before the pool drains. */
    std::mutex dlMu_;
    std::condition_variable dlCv_;
    std::vector<std::pair<std::chrono::steady_clock::time_point,
                          std::weak_ptr<JobCore>>>
        dlQueue_;
    bool dlStop_ = false;
    std::thread dlThread_;

    /** Last member: its destructor drains cells that still
     *  reference the fields above. */
    engine::WorkerPool pool_;
};

} // namespace vliw::api::detail

#endif // WIVLIW_API_EXECUTOR_HH
