/**
 * @file
 * The session's asynchronous executor (internal): one shared
 * priority-aware WorkerPool that multiplexes every submitted job's
 * cells, plus the per-job bookkeeping that turns retired cells
 * into the ordered event stream and the final JobCore state.
 *
 * Scheduling model: a job's cells enter the pool at the job's
 * priority (higher first, FIFO within a priority). An admission
 * cap (SubmitOptions::maxInFlight) enqueues only that many cells
 * up front and tops the window up as cells retire, so a huge sweep
 * cannot starve later, higher-priority submissions. Cancellation
 * is observed cooperatively by every cell; queued cells of a
 * cancelled job drain as cheap skips so accounting always reaches
 * the total. None of this machinery can change a result value:
 * cells write only their own slot and derive all randomness from
 * their spec (the engine's determinism contract).
 */

#ifndef WIVLIW_API_EXECUTOR_HH
#define WIVLIW_API_EXECUTOR_HH

#include <memory>
#include <vector>

#include "api/jobs.hh"
#include "engine/engine.hh"
#include "engine/worker_pool.hh"

namespace vliw::api::detail {

class AsyncExecutor
{
  public:
    AsyncExecutor(engine::ExperimentEngine &engine, int threads);

    /** Drains every queued cell, then joins the pool. */
    ~AsyncExecutor() = default;

    /**
     * Admit one job over @p specs (already validated/resolved).
     * When @p rejected is an error the job is born Done carrying
     * it — submission itself never fails, bad requests surface
     * through take() and the JobFinished event.
     */
    std::shared_ptr<JobCore>
    submit(std::vector<engine::ExperimentSpec> specs, bool isSweep,
           const SubmitOptions &opts, Status rejected = Status());

    /** Grow the shared pool (never shrinks). */
    void ensureThreads(int threads);

    int threadCount() const { return pool_.threadCount(); }

  private:
    void runCell(const std::shared_ptr<JobCore> &core, int cell);
    void enqueueCell(const std::shared_ptr<JobCore> &core, int cell);
    /** Deliver one event, absorbing sink exceptions. */
    static void emit(const std::shared_ptr<JobCore> &core,
                     JobEvent event);

    engine::ExperimentEngine &engine_;
    std::atomic<JobId> nextId_{1};
    /** Last member: its destructor drains cells that still
     *  reference the fields above. */
    engine::WorkerPool pool_;
};

} // namespace vliw::api::detail

#endif // WIVLIW_API_EXECUTOR_HH
