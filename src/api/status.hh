/**
 * @file
 * Structured error handling for the `vliw::api` façade.
 *
 * Every fallible façade operation returns a Status (or a Result<T>
 * carrying one) instead of terminating the process: a code that
 * classifies the failure, a human-readable message, and an optional
 * context string (for example the list of valid registry names that
 * an unknown-name error should surface to the user). `vliw_fatal`
 * remains reserved for true invariant violations; nothing reachable
 * from `api::Session` with bad user input goes through it.
 */

#ifndef WIVLIW_API_STATUS_HH
#define WIVLIW_API_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "support/logging.hh"

namespace vliw::api {

/** Failure classification, deliberately small and stable. */
enum class StatusCode
{
    Ok,
    /** A value is out of range or malformed (bad option, bad key). */
    InvalidArgument,
    /** A name is not present in the consulted registry. */
    NotFound,
    /** A registration collides with an existing name. */
    AlreadyExists,
    /** Inputs were well-formed but the pipeline could not satisfy
     *  them (e.g. no schedule within the II budget). */
    FailedPrecondition,
    /** A wivliw bug surfaced as an exception; report it. */
    Internal,
    /** The caller cancelled the job; completed partial results
     *  (delivered next to this status) remain valid. */
    Cancelled,
    /** Admission control rejected the submission because the
     *  session's queue-depth limit is reached; the context carries
     *  the current depth and the limit. Retry after backing off. */
    Overloaded,
    /** The job's deadline passed before it finished; like Cancelled,
     *  completed partial results remain valid. */
    DeadlineExceeded,
};

const char *statusCodeName(StatusCode code);

/** Outcome of a fallible façade call. Cheap to copy and move. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    static Status
    error(StatusCode code, std::string message,
          std::string context = "")
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        s.context_ = std::move(context);
        return s;
    }

    static Status
    invalidArgument(std::string message, std::string context = "")
    {
        return error(StatusCode::InvalidArgument,
                     std::move(message), std::move(context));
    }

    static Status
    notFound(std::string message, std::string context = "")
    {
        return error(StatusCode::NotFound, std::move(message),
                     std::move(context));
    }

    static Status
    cancelled(std::string message, std::string context = "")
    {
        return error(StatusCode::Cancelled, std::move(message),
                     std::move(context));
    }

    static Status
    overloaded(std::string message, std::string context = "")
    {
        return error(StatusCode::Overloaded, std::move(message),
                     std::move(context));
    }

    static Status
    deadlineExceeded(std::string message, std::string context = "")
    {
        return error(StatusCode::DeadlineExceeded,
                     std::move(message), std::move(context));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }
    /**
     * Supplementary detail a caller can surface next to the
     * message; unknown-name errors put the comma-joined valid
     * names here so a CLI can print them verbatim.
     */
    const std::string &context() const { return context_; }

    /** "code: message (context)" for logs and exceptions. */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
    std::string context_;
};

/** A value or the Status explaining its absence. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Implicit from an error Status (must not be Ok). */
    Result(Status status) : status_(std::move(status))
    {
        vliw_assert(!status_.ok(),
                    "Result built from an Ok status without a value");
    }

    /** Implicit from a value. */
    Result(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const
    {
        vliw_assert(ok(), "value() on failed Result: ",
                    status_.toString());
        return *value_;
    }

    T &
    value()
    {
        vliw_assert(ok(), "value() on failed Result: ",
                    status_.toString());
        return *value_;
    }

    /** Move the value out (the Result is left empty). */
    T
    take()
    {
        vliw_assert(ok(), "take() on failed Result: ",
                    status_.toString());
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace vliw::api

#endif // WIVLIW_API_STATUS_HH
