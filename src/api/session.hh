/**
 * @file
 * The stable `vliw::api` façade: one supported entry point for
 * embedding wivliw as a library.
 *
 * An opaque Session wraps the Toolchain, the experiment engine and
 * its CompileCache behind value-type requests:
 *
 *   api::Session session;
 *   auto res = session.run({.workload = "gsmdec",
 *                           .arch = "interleaved-ab"});
 *   if (!res.ok()) { ... res.status().message() ... }
 *
 * Every capability axis (architectures, schedulers, unrolling
 * policies, workloads) resolves by name through the session's
 * registries, which are seeded with the paper's entries and accept
 * user registrations; every fallible path returns an api::Status
 * instead of terminating the process.
 */

#ifndef WIVLIW_API_SESSION_HH
#define WIVLIW_API_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "api/registries.hh"
#include "api/status.hh"
#include "engine/engine.hh"

namespace vliw::api {

/** Session-wide execution knobs. */
struct SessionOptions
{
    /** Default worker threads for sweep(); >= 1. */
    int jobs = 1;
    /** Share compiles between arch/option variants. */
    bool compileCache = true;
};

/**
 * One benchmark under one architecture. All four names resolve
 * through the session's registries; `arch` also accepts parametric
 * keys ("interleaved:c8:b16k", see ArchRegistry::resolve).
 */
struct RunRequest
{
    std::string workload;
    std::string arch = "interleaved-ab";
    std::string scheduler = "ipbc";
    std::string unroll = "selective";
    /** Execution data sets, batched in one simulation pass. */
    int datasets = 1;
    /**
     * Seeds, alignment, chains, versioning, profiling caps. The
     * heuristic/unroll members are overridden by the resolved
     * `scheduler`/`unroll` names above.
     */
    ToolchainOptions options;
};

/** Result of Session::run(): one experiment, >= 1 data sets. */
struct RunResult
{
    engine::ExperimentResult experiment;

    /** The primary (first) data set's result. */
    const BenchmarkRun &run() const { return experiment.run(); }
    const std::vector<BenchmarkRun> &
    datasetRuns() const
    {
        return experiment.datasetRuns;
    }
};

/**
 * A declarative sweep: the cross-product of the named axes, run on
 * the session's worker pool with compile memoization. Empty
 * workload/arch axes mean "everything registered".
 */
struct SweepRequest
{
    std::vector<std::string> workloads;
    std::vector<std::string> archs;
    std::vector<std::string> schedulers{"ipbc"};
    std::vector<std::string> unrolls{"selective"};
    std::vector<bool> alignment{true};
    std::vector<bool> chains{true};
    std::vector<bool> versioning{false};
    int datasets = 1;
    /** Worker threads for this sweep; 0 = the session default. */
    int jobs = 0;
    ToolchainOptions options;
};

/** Result of Session::sweep(), in grid order. */
struct SweepResult
{
    std::vector<engine::ExperimentResult> experiments;
    engine::CompileCacheStats cache;

    /**
     * Cells whose compile/simulate failed at run time (their
     * `error`/`userError` slots say why). Name and option problems
     * never get this far — sweep() rejects those atomically before
     * any work — but a mid-grid CompileError (e.g. an II budget
     * one cell cannot meet) does not throw away the rest of the
     * grid's completed experiments.
     */
    std::size_t failedCount() const;
    /** Status of the first failed cell, or Ok when all ran. */
    Status firstError() const;
};

/**
 * Validate the option subset the pipeline cannot defend itself
 * against: rejects abHintBudget < 0, maxIiTries < 1 and out-of-
 * range profiling caps with InvalidArgument.
 */
Status validateOptions(const ToolchainOptions &opts);

/** The façade. Opaque; movable; one compile cache per session. */
class Session
{
  public:
    explicit Session(const SessionOptions &opts = {});
    ~Session();

    Session(Session &&) noexcept;
    Session &operator=(Session &&) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** The session's registries; register custom entries here. */
    Registries &registries();
    const Registries &registries() const;

    /** Resolve an architecture name/key to its configuration. */
    Result<MachineConfig> resolveArch(const std::string &key) const;

    /**
     * Compile one workload without simulating it (schedules,
     * latencies and unroll decisions for inspection). Served from
     * the session's compile cache; the returned artifact is
     * immutable and safe to read from any thread.
     */
    Result<std::shared_ptr<const CompiledBenchmark>>
    compile(const RunRequest &req);

    /** Compile and simulate one workload. */
    Result<RunResult> run(const RunRequest &req);

    /**
     * Run a whole grid. Fails atomically (no work started) on any
     * bad name or option; per-cell runtime failures come back
     * inside the SweepResult (see SweepResult::firstError) next to
     * the cells that did complete.
     */
    Result<SweepResult> sweep(const SweepRequest &req);

    /** Compile-cache accounting accumulated over this session. */
    engine::CompileCacheStats cacheStats() const;

    const SessionOptions &options() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace vliw::api

#endif // WIVLIW_API_SESSION_HH
