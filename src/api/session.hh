/**
 * @file
 * The stable `vliw::api` façade: one supported entry point for
 * embedding wivliw as a library.
 *
 * An opaque Session wraps the Toolchain, the experiment engine and
 * its CompileCache behind value-type requests:
 *
 *   api::Session session;
 *   auto res = session.run({.workload = "gsmdec",
 *                           .arch = "interleaved-ab"});
 *   if (!res.ok()) { ... res.status().message() ... }
 *
 * Long-running work goes through the asynchronous surface instead:
 *
 *   api::BoundedEventQueue events(256);
 *   api::SubmitOptions opts;
 *   opts.priority = 5;
 *   opts.events = &events;
 *   auto job = session.submit(sweepRequest, opts);
 *   // ... consume events, poll progress, maybe job.cancel() ...
 *   auto result = job.take();   // Result<SweepResult>
 *
 * submit() returns immediately with a JobHandle; the job's cells
 * run on the session's shared priority-aware worker pool, stream
 * typed events (JobAccepted, CellCompiled, CellSimulated,
 * CellFailed, Progress, JobFinished) to the configured sink, and
 * honour cooperative cancellation between phases. The blocking
 * run()/sweep() calls are thin wrappers — submit(...).wait().take()
 * — so both surfaces share one execution path and the bit-identity
 * and byte-stable-report guarantees carry over unchanged:
 * priorities, event timing and worker interleaving never influence
 * a result value.
 *
 * Every capability axis (architectures, schedulers, unrolling
 * policies, workloads) resolves by name through the session's
 * registries, which are seeded with the paper's entries and accept
 * user registrations; every fallible path returns an api::Status
 * instead of terminating. One Session may serve many concurrent
 * clients (the `wivliw serve` daemon multiplexes every connection
 * over a single Session precisely so the per-session CompileCache
 * is shared across requests); registrations should happen before
 * concurrent submission starts.
 */

#ifndef WIVLIW_API_SESSION_HH
#define WIVLIW_API_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "api/events.hh"
#include "api/jobs.hh"
#include "api/registries.hh"
#include "api/status.hh"
#include "engine/engine.hh"
#include "support/metrics.hh"

namespace vliw::api {

/** Session-wide execution knobs. */
struct SessionOptions
{
    /**
     * Worker threads of the session's shared pool; >= 1. A
     * SweepRequest asking for more grows the pool (never
     * shrinks).
     */
    int jobs = 1;
    /** Share compiles between arch/option variants. */
    bool compileCache = true;
    /**
     * Bound on resident compile-cache entries (LRU eviction,
     * counted in cacheStats().evictions); 0 = unbounded. For
     * long-lived serving sessions.
     */
    std::size_t cacheCapacity = 0;
    /**
     * Directory of the persistent content-addressed compile store
     * shared across processes (dist::CompileStore); empty = memory
     * only. Store hit/miss/publication counts surface through
     * cacheStats(). An unusable path degrades to memory-only with
     * a warning on stderr — it never fails session construction.
     */
    std::string storeDir;
    /**
     * Admission control: max unretired cells queued across all
     * admitted jobs (0 = unbounded). A submit that would exceed it
     * comes back as a job born Done with StatusCode::Overloaded
     * (depth and limit in the status context) instead of buffering
     * without bound.
     */
    int maxQueuedCells = 0;
    /** Admission control: max concurrently admitted (not yet Done)
     *  jobs (0 = unbounded); rejections as for maxQueuedCells. */
    int maxQueuedJobs = 0;
    /**
     * Seed the workload registry with the compiled-in mediabench
     * suite. false starts the session with an empty workload axis
     * (arch/scheduler/unroll axes are unaffected), which is how
     * the round-trip golden proves ingested kernels stand alone
     * (`wivliw_run --no-builtin-benches`).
     */
    bool builtinWorkloads = true;
};

/**
 * One benchmark under one architecture. All four names resolve
 * through the session's registries; `arch` also accepts parametric
 * keys ("interleaved:c8:b16k", see ArchRegistry::resolve).
 */
struct RunRequest
{
    std::string workload;
    std::string arch = "interleaved-ab";
    std::string scheduler = "ipbc";
    std::string unroll = "selective";
    /** Execution data sets, batched in one simulation pass. */
    int datasets = 1;
    /**
     * Seeds, alignment, chains, versioning, profiling caps. The
     * heuristic/unroll members are overridden by the resolved
     * `scheduler`/`unroll` names above.
     */
    ToolchainOptions options;
};

/** Result of Session::run(): one experiment, >= 1 data sets. */
struct RunResult
{
    engine::ExperimentResult experiment;

    /** The primary (first) data set's result. */
    const BenchmarkRun &run() const { return experiment.run(); }
    const std::vector<BenchmarkRun> &
    datasetRuns() const
    {
        return experiment.datasetRuns;
    }
};

/**
 * A declarative sweep: the cross-product of the named axes, run on
 * the session's worker pool with compile memoization. Empty
 * workload/arch axes mean "everything registered".
 */
struct SweepRequest
{
    std::vector<std::string> workloads;
    std::vector<std::string> archs;
    std::vector<std::string> schedulers{"ipbc"};
    std::vector<std::string> unrolls{"selective"};
    std::vector<bool> alignment{true};
    std::vector<bool> chains{true};
    std::vector<bool> versioning{false};
    int datasets = 1;
    /**
     * Worker threads this sweep wants available; 0 = the session
     * default. Values above the session's pool size grow the
     * shared pool. Results are identical for every value.
     */
    int jobs = 0;
    ToolchainOptions options;
};

/** Result of Session::sweep()/an async sweep job, in grid order. */
struct SweepResult
{
    std::vector<engine::ExperimentResult> experiments;
    engine::CompileCacheStats cache;
    /**
     * Ok for a sweep that ran to the end (even when individual
     * cells failed — see failedCount()); StatusCode::Cancelled
     * when the job was cancelled, in which case `experiments`
     * still holds every completed cell (bit-identical to the same
     * cells of an uncancelled run) and the skipped cells carry
     * their `cancelled` flag.
     */
    Status status;

    /**
     * Cells whose compile/simulate failed at run time (their
     * `error`/`userError` slots say why). Name and option problems
     * never get this far — sweep() rejects those atomically before
     * any work — but a mid-grid CompileError (e.g. an II budget
     * one cell cannot meet) does not throw away the rest of the
     * grid's completed experiments. Skipped cells of a cancelled
     * sweep count here too (their status maps to Cancelled).
     */
    std::size_t failedCount() const;
    /** Status of the first failed cell, or Ok when all ran. */
    Status firstError() const;
    /** Cells that completed (datasetRuns in place). */
    std::size_t completedCount() const;
};

/**
 * Validate the option subset the pipeline cannot defend itself
 * against: rejects abHintBudget < 0, maxIiTries < 1 and out-of-
 * range profiling caps with InvalidArgument.
 */
Status validateOptions(const ToolchainOptions &opts);

/** The façade. Opaque; movable; one compile cache per session. */
class Session
{
  public:
    explicit Session(const SessionOptions &opts = {});
    ~Session();

    Session(Session &&) noexcept;
    Session &operator=(Session &&) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** The session's registries; register custom entries here. */
    Registries &registries();
    const Registries &registries() const;

    /**
     * Register workloads described in the .wvl workload language
     * (docs/WORKLOADS.md) with this session. @p source may define
     * several `benchmark` blocks; with @p name empty every block
     * registers under its own name, otherwise the source must
     * define exactly one block (registered as @p name) or a block
     * named @p name (the others are ignored).
     *
     * Returns the registered names, in source order. All-or-
     * nothing: a parse/validation error (InvalidArgument, message
     * carrying `origin:line:col`, the offending source line and a
     * caret) or a name collision (AlreadyExists) leaves the
     * registry untouched. Re-registering a name with byte-
     * identical content is idempotent (Ok, name not re-listed).
     * @p origin feeds the `--list-benches` source column ("file",
     * "wire", ...); @p label names the source in diagnostics (a
     * file path, "<wire>", ...).
     */
    Result<std::vector<std::string>>
    registerWorkloadText(const std::string &name,
                         const std::string &source,
                         const std::string &origin = "file",
                         const std::string &label = "<wvl>");

    /**
     * Serialize a registered workload (builtin or ingested) to
     * canonical .wvl text (lang::dumpWorkloadText). Feeding the
     * dump back through registerWorkloadText() yields an engine-
     * identical workload — the round-trip the golden test pins.
     */
    Result<std::string>
    dumpWorkloadText(const std::string &workload) const;

    /** Resolve an architecture name/key to its configuration. */
    Result<MachineConfig> resolveArch(const std::string &key) const;

    /**
     * Compile one workload without simulating it (schedules,
     * latencies and unroll decisions for inspection). Served from
     * the session's compile cache; the returned artifact is
     * immutable and safe to read from any thread.
     */
    Result<std::shared_ptr<const CompiledBenchmark>>
    compile(const RunRequest &req);

    /**
     * Submit one run asynchronously. Never fails synchronously: a
     * request with a bad name/option comes back as a job that is
     * already Done carrying the error, so callers need one error
     * path (take(), or the JobFinished event). The handle's
     * take() yields what the blocking run() would have returned.
     */
    JobHandle<RunResult> submit(const RunRequest &req,
                                const SubmitOptions &opts = {});

    /**
     * Submit a whole grid asynchronously. Cells run on the
     * session's shared pool at the submission's priority,
     * streaming events to opts.events; cancel() stops scheduling
     * new cells, drains in-flight ones, and take() then yields the
     * partial SweepResult with StatusCode::Cancelled. Results are
     * independent of priorities, event timing and concurrency.
     */
    JobHandle<SweepResult> submit(const SweepRequest &req,
                                  const SubmitOptions &opts = {});

    /** Compile and simulate one workload (submit + wait + take). */
    Result<RunResult> run(const RunRequest &req);

    /**
     * Run a whole grid, blocking (submit + wait + take). Fails
     * atomically (no work started) on any bad name or option;
     * per-cell runtime failures come back inside the SweepResult
     * (see SweepResult::firstError) next to the cells that did
     * complete.
     */
    Result<SweepResult> sweep(const SweepRequest &req);

    /**
     * Compile-cache accounting accumulated over this session:
     * hits, misses and (for capacity-bounded caches) evictions.
     * Also attached to every JobFinished event.
     */
    engine::CompileCacheStats cacheStats() const;

    /**
     * Point-in-time copy of the metrics registry: every counter,
     * gauge and latency histogram the executor, pool, cache, store,
     * coordinator and fault layer maintain (names and semantics in
     * docs/OPERATIONS.md). The registry is process-wide — sessions
     * share it — and counters are monotonic, so consumers diff two
     * snapshots to attribute activity to an interval.
     */
    metrics::Snapshot metricsSnapshot() const;

    /** metricsSnapshot() rendered in Prometheus text format. */
    std::string metricsText() const;

    const SessionOptions &options() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace vliw::api

#endif // WIVLIW_API_SESSION_HH
