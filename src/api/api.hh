/**
 * @file
 * Umbrella header for the supported library surface: include
 * `api/api.hh`, construct an `api::Session`, and talk to it with
 * `RunRequest`/`SweepRequest`. See the README's "Library API"
 * section for a walkthrough.
 */

#ifndef WIVLIW_API_API_HH
#define WIVLIW_API_API_HH

#include "api/events.hh"
#include "api/jobs.hh"
#include "api/registries.hh"
#include "api/registry.hh"
#include "api/session.hh"
#include "api/status.hh"

#endif // WIVLIW_API_API_HH
