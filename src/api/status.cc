#include "status.hh"

#include <sstream>

namespace vliw::api {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                 return "ok";
      case StatusCode::InvalidArgument:    return "invalid-argument";
      case StatusCode::NotFound:           return "not-found";
      case StatusCode::AlreadyExists:      return "already-exists";
      case StatusCode::FailedPrecondition: return "failed-precondition";
      case StatusCode::Internal:           return "internal";
      case StatusCode::Cancelled:          return "cancelled";
      case StatusCode::Overloaded:         return "overloaded";
      case StatusCode::DeadlineExceeded:   return "deadline-exceeded";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::ostringstream os;
    os << statusCodeName(code_) << ": " << message_;
    if (!context_.empty())
        os << " (" << context_ << ")";
    return os.str();
}

} // namespace vliw::api
