/**
 * @file
 * Loop versioning to break memory dependent chains (paper Section
 * 5.4): the compiler emits two versions of a loop -- one with the
 * conservative chains, one without -- plus check code that picks
 * the unchained version whenever the chained memory references are
 * dynamically disjoint. The paper measures a 67% compute-time
 * reduction on one epicdec loop from exactly this.
 *
 * The "check code" here is the classic range-disjointness test: two
 * chain members conflict if their dynamic address ranges overlap
 * and at least one of them stores.
 */

#ifndef WIVLIW_CORE_VERSIONING_HH
#define WIVLIW_CORE_VERSIONING_HH

#include <cstdint>
#include <string>

#include "ddg/chains.hh"
#include "ddg/ddg.hh"
#include "workloads/address_gen.hh"

namespace vliw {

// ---- library identification ------------------------------------------
// (This header also hosts the build's identity because "what code
// is this" is version-ing too; the CLI's --version and the serve
// daemon's `version` request both print from here.)

/** Semantic library version, e.g. "1.1.0" (CMake project VERSION). */
const char *libraryVersion();

/** CMake build type the library was compiled as, e.g. "Release". */
const char *libraryBuildType();

/** One-line identification: "wivliw <version> (<build type>)". */
std::string libraryVersionLine();

/** Inclusive dynamic byte range touched by one memory op. */
struct AccessRange
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;   // last byte touched

    bool
    overlaps(const AccessRange &o) const
    {
        return lo <= o.hi && o.lo <= hi;
    }
};

/**
 * Range of memory node @p v over @p iterations kernel iterations of
 * the current invocation bound in @p resolver.
 */
AccessRange accessRange(const Ddg &ddg, const AddressResolver &resolver,
                        NodeId v, std::int64_t iterations);

/**
 * The runtime check: true when every chain of @p chains is
 * dynamically serialisation-free, i.e. no two members with at least
 * one store touch overlapping ranges this invocation. When true the
 * unchained loop version is safe to run.
 */
bool chainsDynamicallyDisjoint(const Ddg &ddg, const MemChains &chains,
                               const AddressResolver &resolver,
                               std::int64_t iterations);

} // namespace vliw

#endif // WIVLIW_CORE_VERSIONING_HH
