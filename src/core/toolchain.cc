#include "toolchain.hh"

#include <algorithm>
#include <chrono>

#include "core/versioning.hh"
#include "ddg/mii.hh"
#include "opt/solver.hh"
#include "ddg/unroll.hh"
#include "sim/sim_workspace.hh"
#include "support/logging.hh"
#include "workloads/address_gen.hh"
#include "workloads/dataset.hh"

namespace vliw {

Toolchain::Toolchain(const MachineConfig &cfg,
                     const ToolchainOptions &opts)
    : cfg_(cfg), opts_(opts)
{
    cfg_.validate();
}

LatencyScheme
Toolchain::makeScheme() const
{
    switch (cfg_.cacheOrg) {
      case CacheOrg::Interleaved:
        return LatencyScheme::fourClass(cfg_);
      case CacheOrg::Unified:
        return LatencyScheme::twoClassUnified(cfg_);
      case CacheOrg::MultiVliw:
        return LatencyScheme::twoClassCoherent(cfg_);
    }
    vliw_panic("unknown cache organisation");
}

bool
Toolchain::chainsEnabled() const
{
    // The unified cache serialises everything centrally; chains are
    // an interleaved/multiVLIW compiler constraint.
    return opts_.memChains && cfg_.cacheOrg != CacheOrg::Unified;
}

CompiledLoop
Toolchain::compileAt(const BenchmarkSpec &bench, const LoopSpec &loop,
                     int factor) const
{
    CompiledLoop out;
    out.name = loop.name;
    out.unrollFactor = factor;
    out.invocations = loop.invocations;
    // User workloads pick their own trip counts; an indivisible
    // unroll factor is their mistake to hear about, not a wivliw
    // invariant.
    if (loop.avgIterations % factor != 0) {
        throw CompileError(detail::concat(
            "loop ", bench.name, "/", loop.name, ": trip count ",
            loop.avgIterations, " not divisible by unroll factor ",
            factor));
    }
    out.kernelIterations = loop.avgIterations / factor;

    out.ddg = unrollDdg(loop.body, factor);

    // Profile the unrolled body on the profile data set.
    const DataSet prof_ds = makeDataSet(bench, cfg_,
                                        opts_.profileSeed,
                                        opts_.varAlignment);
    AddressResolver prof_addr(out.ddg, bench, prof_ds);
    out.profile = profileLoop(out.ddg, prof_addr,
                              out.kernelIterations, loop.invocations,
                              cfg_, opts_.profile);

    const std::vector<Circuit> circuits = findCircuits(out.ddg);
    const LatencyScheme scheme = makeScheme();
    out.latency = assignLatencies(out.ddg, circuits, out.profile,
                                  scheme, cfg_);

    // Attraction hints need the assigned latencies: only loads
    // scheduled below the remote-hit latency can stall on remote
    // hits, so only those benefit from buffer capacity.
    if (opts_.abHints && cfg_.attractionBuffers &&
        opts_.abHintBudget > 0) {
        applyAbHints(out.ddg, out.profile, out.latency.latencies);
    }

    // Recurrences that could not reach the target keep the MII up.
    out.mii = std::max(out.latency.miiTarget,
                       computeMii(out.ddg, circuits,
                                  out.latency.latencies, cfg_));

    SchedulerOptions sched_opts;
    sched_opts.heuristic = opts_.heuristic;
    sched_opts.useChains = chainsEnabled();
    sched_opts.maxIiTries = opts_.maxIiTries;
    sched_opts.cancel = opts_.cancel;

    auto outcome = scheduleLoop(out.ddg, circuits,
                                out.latency.latencies, out.profile,
                                cfg_, out.mii, sched_opts);
    if (!outcome) {
        throw CompileError(detail::concat(
            "loop ", bench.name, "/", loop.name,
            " failed to schedule within ", opts_.maxIiTries,
            " II attempts (mii ", out.mii, ")"));
    }
    out.sched = std::move(*outcome);

    // The exact solver runs after the heuristic: the heuristic
    // schedule is its upper bound and the fallback when the budget
    // runs out, so a CompileError can only come from the seed above.
    if (opts_.optimalSolver) {
        const opt::SolveOutcome solved = opt::solveLoop(
            out.ddg, out.latency.latencies, cfg_, sched_opts,
            opts_.solverBudget, out.sched.schedule, out.mii);
        out.solverOutcome = opt::solveStatusName(solved.status);
        out.solverLowerBound = solved.lowerBound;
        out.solverNodes = solved.stats.nodes;
        if (solved.schedule.ii < out.sched.schedule.ii) {
            out.sched.schedule = solved.schedule;
            // chainClusters is metadata (serialized, not simulated);
            // rebind it to the solver's cluster choices.
            if (sched_opts.useChains) {
                const MemChains chains(out.ddg);
                out.sched.chainClusters.assign(
                    std::size_t(chains.numChains()), -1);
                for (int ch = 0; ch < chains.numChains(); ++ch) {
                    const NodeId member = chains.members(ch).front();
                    out.sched.chainClusters[std::size_t(ch)] =
                        solved.schedule.clusterOf(member);
                }
            }
        }
    }
    return out;
}

void
Toolchain::applyAbHints(Ddg &ddg, const ProfileMap &prof,
                        const LatencyMap &lat) const
{
    // Rank loads by the stall the buffer can actually save: the
    // expected remote accesses times the remote-hit exposure of the
    // assigned latency (a load scheduled at or above the remote-hit
    // latency never stalls on a remote hit).
    std::vector<std::pair<double, NodeId>> ranked;
    for (NodeId v : ddg.memNodes()) {
        if (ddg.node(v).kind != OpKind::Load)
            continue;
        const MemProfile &p = prof.at(v);
        const double exposure = std::max(
            0, cfg_.latRemoteHit - lat(v));
        ranked.emplace_back(
            double(p.executions) * (1.0 - p.localRatio) * exposure,
            v);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        ddg.memInfo(ranked[i].second).attractable =
            i < std::size_t(opts_.abHintBudget);
    }
}

CompiledLoop
Toolchain::compileLoop(const BenchmarkSpec &bench,
                       const LoopSpec &loop) const
{
    // Per-instruction analysis wants the original loop's profile.
    const DataSet prof_ds = makeDataSet(bench, cfg_,
                                        opts_.profileSeed,
                                        opts_.varAlignment);
    AddressResolver orig_addr(loop.body, bench, prof_ds);
    const ProfileMap orig_prof =
        profileLoop(loop.body, orig_addr, loop.avgIterations,
                    loop.invocations, cfg_, opts_.profile);

    const int ouf = computeOuf(loop.body, orig_prof, cfg_);

    auto policy_factor = [&](UnrollPolicy policy) {
        switch (policy) {
          case UnrollPolicy::None:   return 1;
          case UnrollPolicy::TimesN: return cfg_.numClusters;
          case UnrollPolicy::Ouf:    return ouf;
          case UnrollPolicy::Selective: break;
        }
        return 1;
    };

    if (opts_.unroll != UnrollPolicy::Selective) {
        CompiledLoop out =
            compileAt(bench, loop, policy_factor(opts_.unroll));
        out.policyChosen = opts_.unroll;
        return out;
    }

    // Selective unrolling: estimate Texec for the three candidate
    // factors and keep the best (paper Section 4.3.1 step 1).
    const std::vector<UnrollPolicy> candidates = {
        UnrollPolicy::None, UnrollPolicy::TimesN, UnrollPolicy::Ouf};
    CompiledLoop best;
    double best_cost = 0.0;
    bool first = true;
    for (UnrollPolicy policy : candidates) {
        const int factor = policy_factor(policy);
        if (!first && factor == best.unrollFactor)
            continue;   // identical factor, identical schedule
        CompiledLoop cand = compileAt(bench, loop, factor);
        cand.policyChosen = policy;
        const double cost = estimateTexec(
            double(loop.avgIterations), factor,
            cand.sched.schedule.stageCount, cand.sched.schedule.ii);
        if (first || cost < best_cost) {
            best = std::move(cand);
            best_cost = cost;
            best.policyChosen = UnrollPolicy::Selective;
        }
        first = false;
    }
    return best;
}

CompiledBenchmark
Toolchain::compileBenchmark(const BenchmarkSpec &bench) const
{
    CompiledBenchmark out;
    out.name = bench.name;
    out.loops.reserve(bench.loops.size());

    for (const LoopSpec &loop : bench.loops) {
        if (opts_.cancel &&
            opts_.cancel->load(std::memory_order_relaxed)) {
            throw CancelledError(detail::concat(
                "compile of ", bench.name, " cancelled"));
        }
        CompiledLoopVersions v;
        v.primary = compileLoop(bench, loop);

        // Loop versioning (Section 5.4): a chain-free second
        // version plus the dynamic disjointness check.
        if (opts_.loopVersioning && chainsEnabled()) {
            v.chains.emplace(v.primary.ddg);
            if (v.chains->maxChainSize() > 1) {
                ToolchainOptions no_chain_opts = opts_;
                no_chain_opts.memChains = false;
                no_chain_opts.loopVersioning = false;
                v.unchained = Toolchain(cfg_, no_chain_opts)
                    .compileLoop(bench, loop);
            }
        }
        out.loops.push_back(std::move(v));
    }
    return out;
}

namespace {

/** Hot-path address callback bound to a resolver (no heap). */
AddressSource
resolverSource(const AddressResolver &addr)
{
    AddressSource src;
    src.ctx = &addr;
    src.fn = [](const void *ctx, NodeId v, std::int64_t iter) {
        return static_cast<const AddressResolver *>(ctx)
            ->addressOf(v, iter);
    };
    return src;
}

/** Kernel handles of one loop's compiled versions. */
struct LoopKernels
{
    int primary = -1;
    int unchained = -1;
};

/**
 * Simulate every loop of a compiled benchmark against one execution
 * data set, using kernels previously prepared on @p ws. This is the
 * per-dataset body both simulateBenchmark() and simulateBatch()
 * share; @p mem must be freshly constructed or resetAll().
 */
BenchmarkRun
simulateDataset(const MachineConfig &cfg, const BenchmarkSpec &bench,
                const CompiledBenchmark &compiledBench,
                const std::vector<LoopKernels> &kernels,
                SimWorkspace &ws, MemSystem &mem,
                const DataSet &exec_ds)
{
    BenchmarkRun run;
    run.name = bench.name;
    Cycles clock = 0;

    std::vector<double> balances;
    std::vector<double> weights;

    for (std::size_t li = 0; li < bench.loops.size(); ++li) {
        const LoopSpec &loop = bench.loops[li];
        const CompiledLoopVersions &versions = compiledBench.loops[li];
        const CompiledLoop &compiled = versions.primary;
        const std::optional<MemChains> &chains = versions.chains;
        const std::optional<CompiledLoop> &unchained =
            versions.unchained;

        AddressResolver exec_addr(compiled.ddg, bench, exec_ds);
        std::optional<AddressResolver> unchained_addr;
        if (unchained)
            unchained_addr.emplace(unchained->ddg, bench, exec_ds);

        LoopRun lr;
        lr.name = loop.name;
        lr.unrollFactor = compiled.unrollFactor;
        lr.ii = compiled.sched.schedule.ii;
        lr.stageCount = compiled.sched.schedule.stageCount;
        lr.copies = compiled.sched.schedule.numCopies();
        lr.workloadBalance =
            compiled.sched.schedule.workloadBalance(cfg.numClusters);
        lr.solver = compiled.solverOutcome;
        lr.solverLowerBound = compiled.solverLowerBound;
        lr.solverNodes = compiled.solverNodes;

        for (int inv = 0; inv < compiled.invocations; ++inv) {
            exec_addr.setInvocation(inv);

            // The check code: run the unchained version when its
            // chained references are dynamically disjoint.
            const CompiledLoop *version = &compiled;
            int kernel = kernels[li].primary;
            const AddressResolver *addr = &exec_addr;
            if (unchained) {
                unchained_addr->setInvocation(inv);
                if (chainsDynamicallyDisjoint(
                        compiled.ddg, *chains, exec_addr,
                        compiled.kernelIterations)) {
                    version = &*unchained;
                    kernel = kernels[li].unchained;
                    addr = &*unchained_addr;
                    lr.unchainedInvocations += 1;
                }
            }

            SimRunParams params;
            params.profile = &version->profile;
            params.iterations = version->kernelIterations;
            params.startCycle = clock;
            const SimRunResult result =
                ws.run(kernel, params, resolverSource(*addr), mem,
                       cfg);
            lr.sim.merge(result.stats);
            clock = result.endCycle;
            // Attraction Buffers flush when a loop finishes.
            mem.loopBoundary();
        }

        lr.dynamicInsts = lr.sim.dynamicOps;
        balances.push_back(lr.workloadBalance);
        weights.push_back(double(lr.dynamicInsts));
        run.total.merge(lr.sim);
        run.loops.push_back(std::move(lr));
    }

    run.workloadBalance = balances.empty()
        ? 0.0 : weightedMean(balances, weights);
    return run;
}

/** Decode every compiled loop (and versioned body) once. */
std::vector<LoopKernels>
prepareKernels(const CompiledBenchmark &compiledBench,
               SimWorkspace &ws)
{
    std::vector<LoopKernels> kernels;
    kernels.reserve(compiledBench.loops.size());
    for (const CompiledLoopVersions &versions : compiledBench.loops) {
        LoopKernels lk;
        lk.primary = ws.prepare(versions.primary.ddg,
                                versions.primary.sched.schedule,
                                versions.primary.latency.latencies);
        if (versions.unchained) {
            lk.unchained =
                ws.prepare(versions.unchained->ddg,
                           versions.unchained->sched.schedule,
                           versions.unchained->latency.latencies);
        }
        kernels.push_back(lk);
    }
    return kernels;
}

} // namespace

BenchmarkRun
Toolchain::simulateBenchmark(const BenchmarkSpec &bench,
                             const CompiledBenchmark &compiledBench) const
{
    vliw_assert(compiledBench.loops.size() == bench.loops.size(),
                "compiled benchmark ", compiledBench.name,
                " does not match spec ", bench.name);

    SimWorkspace &ws = threadSimWorkspace();
    ws.clearKernels();
    const std::vector<LoopKernels> kernels =
        prepareKernels(compiledBench, ws);

    const DataSet exec_ds = makeDataSet(bench, cfg_, opts_.execSeed,
                                        opts_.varAlignment);
    auto mem = makeMemSystem(cfg_);
    return simulateDataset(cfg_, bench, compiledBench, kernels, ws,
                           *mem, exec_ds);
}

std::vector<BenchmarkRun>
Toolchain::simulateBatch(const BenchmarkSpec &bench,
                         const CompiledBenchmark &compiledBench,
                         const std::vector<std::uint64_t> &seeds,
                         std::vector<double> *dataset_ms,
                         double *setup_ms) const
{
    vliw_assert(compiledBench.loops.size() == bench.loops.size(),
                "compiled benchmark ", compiledBench.name,
                " does not match spec ", bench.name);

    // Decode the schedules and build the memory model once; every
    // data set reuses them, so the per-dataset cost is simulation
    // proper plus one resetAll().
    const auto setup_start = std::chrono::steady_clock::now();
    SimWorkspace &ws = threadSimWorkspace();
    ws.clearKernels();
    const std::vector<LoopKernels> kernels =
        prepareKernels(compiledBench, ws);
    auto mem = makeMemSystem(cfg_);
    if (setup_ms) {
        *setup_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() -
                        setup_start)
                        .count();
    }

    if (dataset_ms) {
        dataset_ms->clear();
        dataset_ms->reserve(seeds.size());
    }
    std::vector<BenchmarkRun> runs;
    runs.reserve(seeds.size());
    for (std::uint64_t seed : seeds) {
        const auto t0 = std::chrono::steady_clock::now();
        mem->resetAll();
        const DataSet exec_ds =
            makeDataSet(bench, cfg_, seed, opts_.varAlignment);
        runs.push_back(simulateDataset(cfg_, bench, compiledBench,
                                       kernels, ws, *mem, exec_ds));
        if (dataset_ms) {
            dataset_ms->push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
    }
    return runs;
}

BenchmarkRun
Toolchain::runBenchmark(const BenchmarkSpec &bench) const
{
    return simulateBenchmark(bench, compileBenchmark(bench));
}

std::vector<BenchmarkRun>
Toolchain::runSuite(const std::vector<BenchmarkSpec> &suite) const
{
    std::vector<BenchmarkRun> runs;
    runs.reserve(suite.size());
    for (const BenchmarkSpec &bench : suite)
        runs.push_back(runBenchmark(bench));
    return runs;
}

} // namespace vliw
