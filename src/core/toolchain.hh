/**
 * @file
 * The top-level compile-and-simulate pipeline (the public API most
 * users want): for each loop of a benchmark it
 *
 *   1. picks an unrolling factor (none / xN / OUF / selective),
 *   2. profiles the unrolled body on the PROFILE data set,
 *   3. assigns latencies to memory instructions (4- or 2-class),
 *   4. orders the nodes (SMS) and runs the clustered modulo
 *      scheduler with the selected heuristic (BASE / IBC / IPBC),
 *   5. executes the schedule on the EXECUTION data set against the
 *      configured memory system (interleaved / unified / multiVLIW).
 *
 * This mirrors the paper's flow in Sections 4.2-4.3 and 5.1.
 *
 * Library embedders should prefer the stable façade in
 * `api/api.hh` (api::Session), which resolves names through the
 * capability registries and reports failures as api::Status; the
 * Toolchain signals its own user-input failures by throwing
 * CompileError (support/errors.hh).
 */

#ifndef WIVLIW_CORE_TOOLCHAIN_HH
#define WIVLIW_CORE_TOOLCHAIN_HH

#include <optional>
#include <string>
#include <vector>

#include "ddg/chains.hh"
#include "ddg/profile_map.hh"
#include "machine/machine_config.hh"
#include "opt/budget.hh"
#include "sched/latency_assign.hh"
#include "sched/scheduler.hh"
#include "sched/unroll_policy.hh"
#include "sim/sim_stats.hh"
#include "support/errors.hh"
#include "workloads/mediabench.hh"
#include "workloads/profiler.hh"

namespace vliw {

/** Pipeline configuration. */
struct ToolchainOptions
{
    Heuristic heuristic = Heuristic::Ipbc;
    UnrollPolicy unroll = UnrollPolicy::Selective;
    /** Variable alignment (padding) of stack/heap data. */
    bool varAlignment = true;
    /** Build and enforce memory dependent chains. */
    bool memChains = true;
    /** Profile / execution input identities (different files). */
    std::uint64_t profileSeed = 0x9E1C;
    std::uint64_t execSeed = 0x51AD;
    ProfileOptions profile;
    /** Scheduler escalation budget. */
    int maxIiTries = 64;
    /**
     * Compiler hints for the Attraction Buffers (paper Section
     * 5.2): only the abHintBudget loads with the largest expected
     * remote-access counts are marked attractable, so hot loops do
     * not overflow small buffers. 0 keeps every load attractable.
     */
    bool abHints = false;
    int abHintBudget = 8;
    /**
     * Loop versioning (paper Section 5.4): also compile a
     * chain-free version of every loop with shared chains, plus
     * check code; an invocation whose chained references are
     * dynamically disjoint runs the (tighter) unchained version.
     */
    bool loopVersioning = false;
    /**
     * Cooperative cancellation flag. Checked between per-loop
     * compiles and inside the scheduler's II-retry loop; when
     * observed set the pipeline throws CancelledError. Not a
     * compile-relevant option: engine::compileKey ignores it, so
     * cached artifacts stay shareable across jobs with different
     * tokens. Null (the default) disables the checks.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Run the exact modulo scheduler (src/opt) after the heuristic:
     * the heuristic schedule seeds the search as upper bound and
     * fallback, and is replaced only when the solver finds a
     * strictly smaller II within solverBudget. Compile-relevant:
     * engine::compileKey includes the budget when this is set.
     */
    bool optimalSolver = false;
    opt::SolverBudget solverBudget;
};

/** A fully compiled loop, ready to simulate or inspect. */
struct CompiledLoop
{
    std::string name;
    Ddg ddg;                  ///< unrolled body
    ProfileMap profile;
    LatencyAssignment latency;
    ScheduleOutcome sched;
    int unrollFactor = 1;
    UnrollPolicy policyChosen = UnrollPolicy::None;
    int mii = 1;
    /** Kernel iterations per invocation after unrolling. */
    std::int64_t kernelIterations = 0;
    int invocations = 1;
    /**
     * Exact-solver verdict: "proven" / "feasible" /
     * "budget-exhausted", empty for plain heuristic compiles.
     */
    std::string solverOutcome;
    /** Proven lower bound on this loop's II (0 when no solver). */
    int solverLowerBound = 0;
    /** Search nodes the solver spent on this loop. */
    std::uint64_t solverNodes = 0;
};

/**
 * One loop compiled for execution: the primary version plus, when
 * loop versioning (Section 5.4) applies, the primary body's chains
 * and the chain-free second version the runtime check selects.
 */
struct CompiledLoopVersions
{
    CompiledLoop primary;
    std::optional<MemChains> chains;
    std::optional<CompiledLoop> unchained;
};

/**
 * Every compiler artifact of one benchmark. Immutable once built;
 * simulation only reads it, so one instance can back any number of
 * (possibly concurrent) simulations whose configuration agrees on
 * the compile-relevant options.
 */
struct CompiledBenchmark
{
    std::string name;
    std::vector<CompiledLoopVersions> loops;
};

/** Per-loop result after simulation. */
struct LoopRun
{
    std::string name;
    int unrollFactor = 1;
    int ii = 0;
    int stageCount = 0;
    int copies = 0;
    double workloadBalance = 0.0;
    Counter dynamicInsts = 0;
    SimStats sim;
    /** Invocations the versioning check sent to the unchained
     *  version (0 when versioning is off or never profitable). */
    int unchainedInvocations = 0;
    /** Exact-solver verdict of the compiled loop ("" = heuristic). */
    std::string solver;
    /** Proven lower bound on the loop's II (0 when no solver). */
    int solverLowerBound = 0;
    /** Search nodes the solver spent on this loop. */
    std::uint64_t solverNodes = 0;
};

/** Whole-benchmark result. */
struct BenchmarkRun
{
    std::string name;
    std::vector<LoopRun> loops;
    SimStats total;
    /** Dynamic-instruction-weighted mean loop balance. */
    double workloadBalance = 0.0;

    Cycles cycles() const { return total.totalCycles; }
};

/** The pipeline bound to one machine configuration. */
class Toolchain
{
  public:
    Toolchain(const MachineConfig &cfg, const ToolchainOptions &opts);

    /** Compile one loop (no simulation). */
    CompiledLoop compileLoop(const BenchmarkSpec &bench,
                             const LoopSpec &loop) const;

    /**
     * Compile every loop of @p bench (versioned second bodies
     * included), without simulating anything.
     */
    CompiledBenchmark compileBenchmark(const BenchmarkSpec &bench) const;

    /**
     * Simulate a previously compiled benchmark on the EXECUTION
     * data set. @p compiled may come from this toolchain or from a
     * cache shared between toolchains whose compile-relevant
     * options match (see engine::compileKey).
     */
    BenchmarkRun simulateBenchmark(const BenchmarkSpec &bench,
                                   const CompiledBenchmark &compiled) const;

    /**
     * Simulate one compiled benchmark across several execution data
     * sets (one per seed, see datasetSeed()), amortising schedule
     * decode and all simulator scratch over the whole batch. The
     * result at index i is bit-identical to simulateBenchmark() run
     * under options whose execSeed is seeds[i]. When @p dataset_ms
     * is given it receives one wall-time entry per data set; when
     * @p setup_ms is given it receives the shared batch setup time
     * (schedule decode + memory-model construction), so setup plus
     * the per-dataset entries account for the whole batch.
     */
    std::vector<BenchmarkRun>
    simulateBatch(const BenchmarkSpec &bench,
                  const CompiledBenchmark &compiled,
                  const std::vector<std::uint64_t> &seeds,
                  std::vector<double> *dataset_ms = nullptr,
                  double *setup_ms = nullptr) const;

    /** Compile and simulate every loop of @p bench. */
    BenchmarkRun runBenchmark(const BenchmarkSpec &bench) const;

    /** Run the full suite. */
    std::vector<BenchmarkRun>
    runSuite(const std::vector<BenchmarkSpec> &suite) const;

    const MachineConfig &config() const { return cfg_; }
    const ToolchainOptions &options() const { return opts_; }

  private:
    /** Latency classes for the configured cache organisation. */
    LatencyScheme makeScheme() const;

    /** Chains policy: never for unified (no correctness need). */
    bool chainsEnabled() const;

    /** Compile at one fixed unroll factor. */
    CompiledLoop compileAt(const BenchmarkSpec &bench,
                           const LoopSpec &loop, int factor) const;

    /** Restrict attractable loads to the abHintBudget hottest. */
    void applyAbHints(Ddg &ddg, const ProfileMap &prof,
                      const LatencyMap &lat) const;

    MachineConfig cfg_;
    ToolchainOptions opts_;
};

} // namespace vliw

#endif // WIVLIW_CORE_TOOLCHAIN_HH
