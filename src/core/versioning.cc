#include "versioning.hh"

#include <algorithm>

#include "support/logging.hh"

// The build system injects both; the fallbacks keep ad-hoc builds
// (a bare compiler invocation) honest about what they are.
#ifndef WIVLIW_VERSION
#define WIVLIW_VERSION "0.0.0-dev"
#endif
#ifndef WIVLIW_BUILD_TYPE
#define WIVLIW_BUILD_TYPE "unknown"
#endif

namespace vliw {

const char *
libraryVersion()
{
    return WIVLIW_VERSION;
}

const char *
libraryBuildType()
{
    return WIVLIW_BUILD_TYPE[0] != '\0' ? WIVLIW_BUILD_TYPE
                                        : "unknown";
}

std::string
libraryVersionLine()
{
    return std::string("wivliw ") + libraryVersion() + " (" +
           libraryBuildType() + ")";
}

AccessRange
accessRange(const Ddg &ddg, const AddressResolver &resolver,
            NodeId v, std::int64_t iterations)
{
    // Exact sweep: kernel trip counts are small, and symbol
    // wrapping makes closed-form endpoint reasoning brittle.
    const MemAccessInfo &info = ddg.memInfo(v);
    AccessRange range{~0ULL, 0};
    for (std::int64_t i = 0; i < std::max<std::int64_t>(1, iterations);
         ++i) {
        const std::uint64_t a = resolver.addressOf(v, i);
        range.lo = std::min(range.lo, a);
        range.hi = std::max(range.hi,
                            a + std::uint64_t(info.granularity) - 1);
    }
    return range;
}

bool
chainsDynamicallyDisjoint(const Ddg &ddg, const MemChains &chains,
                          const AddressResolver &resolver,
                          std::int64_t iterations)
{
    for (int ch = 0; ch < chains.numChains(); ++ch) {
        const auto &members = chains.members(ch);
        if (members.size() < 2)
            continue;
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                const bool store_involved =
                    ddg.memInfo(members[i]).isStore ||
                    ddg.memInfo(members[j]).isStore;
                if (!store_involved)
                    continue;
                const AccessRange a = accessRange(
                    ddg, resolver, members[i], iterations);
                const AccessRange b = accessRange(
                    ddg, resolver, members[j], iterations);
                if (a.overlaps(b))
                    return false;
            }
        }
    }
    return true;
}

} // namespace vliw
