#include "lang/writer.hh"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <set>
#include <sstream>
#include <vector>

#include "ddg/op_types.hh"

namespace vliw::lang {

namespace {

/** Words the parser treats specially in operand position. */
const std::set<std::string> &
reservedIds()
{
    static const std::set<std::string> reserved{
        "dep",    "chain",     "gran",      "stride",
        "indirect", "range",   "offset",    "invstride",
        "noattract", "latency", "name",     "from",
        "value",  "unknown"};
    return reserved;
}

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' ||
           c == '-';
}

/** Can @p name be written as a bare id and lex back as one word? */
bool
usableId(const std::string &name)
{
    if (name.empty() || reservedIds().count(name))
        return false;
    for (char c : name) {
        if (!isWordChar(c))
            return false;
    }
    return name.find("->") == std::string::npos;
}

std::string
quoted(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Shortest decimal that strtod() parses back to the same value. */
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    if (res.ec == std::errc())
        return std::string(buf, res.ptr);
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
opKindWord(OpKind kind)
{
    switch (kind) {
    case OpKind::IntAlu:
        return "intalu";
    case OpKind::IntMul:
        return "intmul";
    case OpKind::FpAlu:
        return "fpalu";
    case OpKind::FpMul:
        return "fpmul";
    case OpKind::FpDiv:
        return "fpdiv";
    case OpKind::Load:
        return "load";
    case OpKind::Store:
        return "store";
    case OpKind::Copy:
        return "copy"; // never written: specs carry no copies
    }
    return "intalu";
}

const char *
depKindWord(DepKind kind)
{
    switch (kind) {
    case DepKind::RegFlow:
        return "flow";
    case DepKind::RegAnti:
        return "anti";
    case DepKind::RegOut:
        return "out";
    case DepKind::MemFlow:
        return "memflow";
    case DepKind::MemAnti:
        return "memanti";
    case DepKind::MemOut:
        return "memout";
    }
    return "flow";
}

/**
 * Pick a writable id per node: the node's own name when it lexes
 * as one word, is not reserved and is unique in the loop;
 * otherwise a fresh `n<index>`-style fallback (with the original
 * kept as a `name "..."` attribute).
 */
std::vector<std::string>
nodeIds(const Ddg &body, std::vector<bool> &renamed)
{
    const int n = body.numNodes();
    std::set<std::string> counts;
    std::set<std::string> dups;
    for (NodeId id = 0; id < n; ++id) {
        const std::string &name = body.node(id).name;
        if (!counts.insert(name).second)
            dups.insert(name);
    }
    std::vector<std::string> ids(static_cast<std::size_t>(n));
    renamed.assign(static_cast<std::size_t>(n), false);
    std::set<std::string> used;
    for (NodeId id = 0; id < n; ++id) {
        const std::string &name = body.node(id).name;
        if (usableId(name) && !dups.count(name)) {
            ids[std::size_t(id)] = name;
            used.insert(name);
        }
    }
    for (NodeId id = 0; id < n; ++id) {
        if (!ids[std::size_t(id)].empty())
            continue;
        std::string fallback = "n" + std::to_string(id);
        while (used.count(fallback))
            fallback += "_";
        used.insert(fallback);
        ids[std::size_t(id)] = fallback;
        renamed[std::size_t(id)] = true;
    }
    return ids;
}

void
dumpLoop(std::ostream &os, const LoopSpec &loop, std::size_t index,
         const std::vector<std::string> &symbolIds)
{
    os << "  loop "
       << (usableId(loop.name) ? loop.name
                               : "loop" + std::to_string(index))
       << " trip " << loop.avgIterations;
    if (loop.invocations != 2)
        os << " invocations " << loop.invocations;
    os << " {\n";

    std::vector<bool> renamed;
    const std::vector<std::string> ids =
        nodeIds(loop.body, renamed);
    for (NodeId id = 0; id < loop.body.numNodes(); ++id) {
        const DdgNode &node = loop.body.node(id);
        os << "    " << ids[std::size_t(id)] << " = "
           << opKindWord(node.kind);
        if (loop.body.isMemNode(id)) {
            const MemAccessInfo &info = loop.body.memInfo(id);
            os << ' '
               << symbolIds[static_cast<std::size_t>(info.symbol)]
               << " gran " << info.granularity;
            if (info.indirect) {
                os << " indirect";
                if (info.indexRange != 0)
                    os << " range " << info.indexRange;
            } else {
                os << " stride " << info.stride;
            }
            if (info.offset != 0)
                os << " offset " << info.offset;
            if (info.invocationStride != 0)
                os << " invstride " << info.invocationStride;
            if (!info.attractable)
                os << " noattract";
        } else if (node.fixedLatency != defaultLatency(node.kind)) {
            os << " latency " << node.fixedLatency;
        }
        if (renamed[std::size_t(id)] && !node.name.empty())
            os << " name " << quoted(node.name);
        os << '\n';
    }
    for (const DdgEdge &edge : loop.body.edges()) {
        os << "    dep " << ids[std::size_t(edge.src)] << " -> "
           << ids[std::size_t(edge.dst)] << " kind "
           << depKindWord(edge.kind);
        if (edge.distance != 0)
            os << " dist " << edge.distance;
        os << '\n';
    }
    os << "  }\n";
}

} // namespace

std::string
dumpWorkloadText(const BenchmarkSpec &spec)
{
    std::ostringstream os;
    os << "benchmark "
       << (usableId(spec.name) ? spec.name : "bench") << " {\n";
    if (spec.mainDataSize != 4 || spec.mainDataShare != 1.0) {
        os << "  maindata size " << spec.mainDataSize << " share "
           << formatDouble(spec.mainDataShare) << '\n';
    }
    std::vector<std::string> symbolIds;
    std::set<std::string> used;
    for (std::size_t i = 0; i < spec.symbols.size(); ++i) {
        const SymbolSpec &sym = spec.symbols[i];
        std::string id = usableId(sym.name) && !used.count(sym.name)
                             ? sym.name
                             : "sym" + std::to_string(i);
        while (used.count(id))
            id += "_";
        used.insert(id);
        symbolIds.push_back(id);
        os << "  symbol " << id << " size " << sym.sizeBytes;
        if (sym.storage == SymbolSpec::Storage::Stack)
            os << " storage stack";
        else if (sym.storage == SymbolSpec::Storage::Heap)
            os << " storage heap";
        os << '\n';
    }
    for (std::size_t i = 0; i < spec.loops.size(); ++i)
        dumpLoop(os, spec.loops[i], i, symbolIds);
    os << "}\n";
    return os.str();
}

std::string
wvlFingerprint(const BenchmarkSpec &spec)
{
    const std::string text = dumpWorkloadText(spec);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace vliw::lang
