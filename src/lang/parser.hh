/**
 * @file
 * Recursive-descent parser for the .wvl workload language, from
 * token stream to a positioned AST. Syntax only: name resolution,
 * op-kind lookup, trip-count rules and every other semantic check
 * live in lower.hh, so one construct has one error site.
 *
 * Grammar (line-oriented; `#` comments; blank lines free):
 *
 *   file      := { benchmark }
 *   benchmark := 'benchmark' NAME '{' { benchstmt } '}'
 *   benchstmt := 'maindata' { 'size' INT | 'share' NUM }
 *              | 'symbol' NAME 'size' INT [ 'storage' WORD ]
 *              | loop
 *   loop      := 'loop' NAME 'trip' INT [ 'invocations' INT ]
 *                '{' { loopstmt } '}'
 *   loopstmt  := ID '=' KIND [ SYMBOL ] { attr }
 *              | 'dep' ID '->' ID 'kind' WORD [ 'dist' INT ]
 *              | 'chain' ID ID { ID }
 *   attr      := 'gran' INT | 'stride' (INT | 'unknown')
 *              | 'indirect' | 'range' INT | 'offset' INT
 *              | 'invstride' INT | 'noattract' | 'latency' INT
 *              | 'name' STRING | 'from' ID { ID } | 'value' ID
 *
 * Attribute keywords are reserved in operand position: a `from`
 * list ends at the first word that names another attribute.
 */

#ifndef WIVLIW_LANG_PARSER_HH
#define WIVLIW_LANG_PARSER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/diag.hh"

namespace vliw::lang {

/** A use of an op id (operand, dep endpoint, chain element). */
struct AstRef
{
    std::string id;
    Pos pos;
};

/** One `ID = KIND ...` op line. */
struct AstOp
{
    Pos pos;
    std::string id;
    Pos idPos;
    std::string kind; ///< raw word; resolved during lowering
    Pos kindPos;

    std::string symbol; ///< empty = no symbol operand given
    Pos symbolPos;
    std::int64_t gran = 0;
    bool hasGran = false;
    Pos granPos;
    std::int64_t stride = 0;
    bool hasStride = false;
    bool strideUnknown = false;
    Pos stridePos;
    bool indirect = false;
    Pos indirectPos;
    std::int64_t range = 0;
    bool hasRange = false;
    Pos rangePos;
    std::int64_t offset = 0;
    bool hasOffset = false;
    Pos offsetPos;
    std::int64_t invstride = 0;
    bool hasInvstride = false;
    Pos invstridePos;
    bool noattract = false;
    std::int64_t latency = 0;
    bool hasLatency = false;
    Pos latencyPos;
    std::string display; ///< `name "..."` override
    bool hasDisplay = false;
    std::vector<AstRef> from;
    AstRef value;
    bool hasValue = false;
};

/** One explicit `dep A -> B kind K [dist N]` line. */
struct AstDep
{
    Pos pos;
    AstRef src;
    AstRef dst;
    std::string kind; ///< raw word; resolved during lowering
    Pos kindPos;
    std::int64_t dist = 0;
    bool hasDist = false;
    Pos distPos;
};

/** One `chain A B C ...` memory-chain line. */
struct AstChain
{
    Pos pos;
    std::vector<AstRef> ops;
};

/** Loop statements in source order (edge order depends on it). */
struct AstStmt
{
    enum class Kind { Op, Dep, Chain };
    Kind kind = Kind::Op;
    AstOp op;
    AstDep dep;
    AstChain chain;
};

struct AstLoop
{
    Pos pos;
    std::string name;
    Pos namePos;
    std::int64_t trip = 0;
    Pos tripPos;
    std::int64_t invocations = 2;
    bool hasInvocations = false;
    Pos invocationsPos;
    std::vector<AstStmt> stmts;
};

struct AstSymbol
{
    Pos pos;
    std::string name;
    Pos namePos;
    std::int64_t size = 0;
    Pos sizePos;
    std::string storage; ///< raw word; resolved during lowering
    bool hasStorage = false;
    Pos storagePos;
};

struct AstBenchmark
{
    Pos pos;
    std::string name;
    Pos namePos;
    std::int64_t mainSize = 4;
    bool hasMainSize = false;
    Pos mainSizePos;
    double mainShare = 1.0;
    bool hasMainShare = false;
    Pos mainSharePos;
    std::vector<AstSymbol> symbols;
    std::vector<AstLoop> loops;
};

/**
 * Parse @p source into @p out. Returns the first syntax error as a
 * Diag (with @p out unspecified), nullopt on success. Total: never
 * throws or crashes on any input.
 */
std::optional<Diag> parseWvl(std::string_view source,
                             std::vector<AstBenchmark> &out);

} // namespace vliw::lang

#endif // WIVLIW_LANG_PARSER_HH
