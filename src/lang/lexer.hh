/**
 * @file
 * Tokenizer for the .wvl workload language. Line-oriented: `#`
 * starts a comment, newlines are significant (they terminate
 * statements), words are bare runs of `[A-Za-z0-9_.-]`, strings are
 * double-quoted with `\"`/`\\` escapes, and the only punctuation is
 * `{`, `}`, `=` and `->`. Every token carries its 1-based position
 * so parser and validator diagnostics can point into the source.
 *
 * Tokenizing is total: an illegal byte or an unterminated string
 * yields a Diag, never a crash.
 */

#ifndef WIVLIW_LANG_LEXER_HH
#define WIVLIW_LANG_LEXER_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/diag.hh"

namespace vliw::lang {

struct Token
{
    enum class Kind {
        Word,    ///< bare identifier / keyword / number
        String,  ///< double-quoted, unescaped text
        LBrace,
        RBrace,
        Equals,
        Arrow,   ///< ->
        Newline, ///< statement terminator (comments swallowed)
        End,
    };

    Kind kind = Kind::End;
    std::string text; ///< word or unescaped string contents
    Pos pos;
};

/**
 * Tokenize @p source into @p out (always ending with one End
 * token). Returns a Diag on the first lexical error, in which case
 * @p out is unspecified; nullopt on success.
 */
std::optional<Diag> tokenize(std::string_view source,
                             std::vector<Token> &out);

} // namespace vliw::lang

#endif // WIVLIW_LANG_LEXER_HH
