/**
 * @file
 * Canonical .wvl writer: serialize a BenchmarkSpec back to the
 * workload language, such that
 *
 *   parse(dump(spec)) == spec      (same engine-visible content)
 *   dump(parse(text)) is a fixed point (dumping twice is stable)
 *
 * which is what the round-trip golden test leans on: every builtin
 * mediabench spec dumped, re-parsed and swept must produce byte-
 * identical CSVs to the compiled-in original.
 *
 * Canonical form: ops in node-index order with only memory/latency
 * attributes (no `from`/`value` sugar), then every dependence as an
 * explicit `dep` line in edge-index order (the DDG is append-only,
 * so this reconstructs adjacency exactly); defaulted fields
 * (offset 0, invstride 0, attractable, dist 0, default latency,
 * maindata 4/1.0, invocations 2, storage global) are omitted.
 */

#ifndef WIVLIW_LANG_WRITER_HH
#define WIVLIW_LANG_WRITER_HH

#include <string>

#include "workloads/loop_spec.hh"

namespace vliw::lang {

/** Serialize @p spec as one canonical `benchmark` block. */
std::string dumpWorkloadText(const BenchmarkSpec &spec);

/**
 * Content fingerprint of @p spec: FNV-1a 64 of its canonical dump,
 * as 16 hex digits. Two specs fingerprint equal iff the engine
 * sees the same workload, which is what keys the compile cache and
 * makes re-registration idempotent.
 */
std::string wvlFingerprint(const BenchmarkSpec &spec);

} // namespace vliw::lang

#endif // WIVLIW_LANG_WRITER_HH
