/**
 * @file
 * Semantic validation and lowering: .wvl AST -> BenchmarkSpec.
 *
 * Everything the downstream pipeline would assert on is rejected
 * here as a positioned Diag instead: unknown op/dep kinds (with a
 * "did you mean" suggestion), dangling op references, memory ops
 * without a bound symbol, non-indirect accesses with an unknown
 * stride (signed-overflow UB in address generation), trip counts
 * the modulo scheduler refuses (< 8 or not a multiple of 16),
 * zero-distance dependence cycles (which would deadlock scheduling)
 * and resource blow-ups (node/edge/loop/symbol caps). A lowered
 * spec is safe to hand to the engine on any thread.
 *
 * Each lowered spec also carries a content fingerprint (FNV-1a of
 * its canonical dump, see writer.hh) so the compile cache can tell
 * two same-named kernels with different bodies apart.
 */

#ifndef WIVLIW_LANG_LOWER_HH
#define WIVLIW_LANG_LOWER_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/parser.hh"
#include "workloads/loop_spec.hh"

namespace vliw::lang {

/** Hard caps keeping hostile input from exhausting the process. */
constexpr int kMaxLoopsPerBenchmark = 64;
constexpr int kMaxSymbolsPerBenchmark = 64;
constexpr int kMaxOpsPerLoop = 256;
constexpr int kMaxEdgesPerLoop = 2048;
constexpr std::int64_t kMaxTripCount = 1 << 20;
constexpr int kMaxInvocations = 1024;
constexpr int kMaxDepDistance = 1024;
constexpr int kMaxLatency = 1024;
constexpr std::int64_t kMaxSymbolBytes = std::int64_t(1) << 30;
constexpr std::int64_t kMaxAddressMagnitude = std::int64_t(1)
                                              << 32;

/**
 * Validate and lower every benchmark of @p ast into @p out (one
 * BenchmarkSpec per `benchmark` block, in source order, fingerprint
 * set). Returns the first semantic error as a Diag, in which case
 * @p out is unspecified; nullopt on success.
 */
std::optional<Diag> lowerWvl(const std::vector<AstBenchmark> &ast,
                             std::vector<BenchmarkSpec> &out);

/**
 * Parse + validate + lower in one call (the shape every front door
 * uses). On error @p out is unspecified.
 */
std::optional<Diag> compileWvl(std::string_view source,
                               std::vector<BenchmarkSpec> &out);

/**
 * The best "did you mean" candidate for @p given among
 * @p candidates, or empty when nothing is close (edit distance
 * > 2). Exposed for the op-kind/dep-kind/symbol suggestion tests.
 */
std::string didYouMean(const std::string &given,
                       const std::vector<std::string> &candidates);

} // namespace vliw::lang

#endif // WIVLIW_LANG_LOWER_HH
