/**
 * @file
 * Diagnostics for the .wvl workload language: a source position
 * (1-based line:column) plus a message, renderable as a compiler-
 * style error with the offending source line and a caret.
 *
 * The whole `vliw::lang` layer is *total*: malformed input of any
 * shape comes back as one of these, never an assertion, exception
 * or crash. The api layer converts a Diag into an api::Status whose
 * message carries the rendered snippet, so every front door (CLI
 * flag, library call, daemon op) reports the same `file:line:col`
 * shape.
 */

#ifndef WIVLIW_LANG_DIAG_HH
#define WIVLIW_LANG_DIAG_HH

#include <string>
#include <string_view>

namespace vliw::lang {

/** 1-based source position; {0,0} means "no position". */
struct Pos
{
    int line = 0;
    int col = 0;
};

/** One error: where and what. */
struct Diag
{
    Pos pos;
    std::string message;
};

/**
 * Render @p diag against the source it was produced from:
 *
 *     <origin>:3:12: error: unknown op kind 'lod' (did you mean 'load'?)
 *       x1 = lod src gran 2 stride 2
 *            ^
 *
 * @p origin is a display label for the source (a file name,
 * "<wire>", ...). Out-of-range positions degrade to the first line
 * without the snippet — rendering never fails.
 */
std::string renderDiag(const Diag &diag, std::string_view source,
                       std::string_view origin);

} // namespace vliw::lang

#endif // WIVLIW_LANG_DIAG_HH
