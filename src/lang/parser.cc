#include "lang/parser.hh"

#include <cerrno>
#include <cstdlib>
#include <set>

#include "lang/lexer.hh"

namespace vliw::lang {

namespace {

const std::set<std::string> &
attrKeywords()
{
    static const std::set<std::string> kw{
        "gran",      "stride",    "indirect", "range",
        "offset",    "invstride", "noattract", "latency",
        "name",      "from",      "value"};
    return kw;
}

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks_(std::move(tokens))
    {
    }

    std::optional<Diag>
    run(std::vector<AstBenchmark> &out)
    {
        out.clear();
        skipNewlines();
        while (cur().kind != Token::Kind::End) {
            AstBenchmark bench;
            if (!parseBenchmark(bench))
                return err_;
            out.push_back(std::move(bench));
            skipNewlines();
        }
        if (out.empty())
            return Diag{Pos{1, 1},
                        "source defines no benchmark (expected "
                        "'benchmark NAME { ... }')"};
        return std::nullopt;
    }

  private:
    const Token &
    cur() const
    {
        return toks_[i_];
    }

    void
    advance()
    {
        if (toks_[i_].kind != Token::Kind::End)
            ++i_;
    }

    void
    skipNewlines()
    {
        while (cur().kind == Token::Kind::Newline)
            advance();
    }

    bool
    fail(Pos pos, std::string message)
    {
        if (!err_)
            err_ = Diag{pos, std::move(message)};
        return false;
    }

    std::string
    describe(const Token &t) const
    {
        switch (t.kind) {
        case Token::Kind::Word:
            return "'" + t.text + "'";
        case Token::Kind::String:
            return "string \"" + t.text + "\"";
        case Token::Kind::LBrace:
            return "'{'";
        case Token::Kind::RBrace:
            return "'}'";
        case Token::Kind::Equals:
            return "'='";
        case Token::Kind::Arrow:
            return "'->'";
        case Token::Kind::Newline:
            return "end of line";
        case Token::Kind::End:
            return "end of input";
        }
        return "token";
    }

    /** Consume a word; any word qualifies. */
    bool
    word(const char *what, std::string &text, Pos &pos)
    {
        if (cur().kind != Token::Kind::Word)
            return fail(cur().pos, std::string("expected ") + what +
                                       ", got " + describe(cur()));
        text = cur().text;
        pos = cur().pos;
        advance();
        return true;
    }

    /** Consume exactly the keyword @p kw. */
    bool
    keyword(const char *kw)
    {
        if (cur().kind != Token::Kind::Word || cur().text != kw)
            return fail(cur().pos, std::string("expected '") + kw +
                                       "', got " + describe(cur()));
        advance();
        return true;
    }

    bool
    punct(Token::Kind kind, const char *what)
    {
        if (cur().kind != kind)
            return fail(cur().pos, std::string("expected ") + what +
                                       ", got " + describe(cur()));
        advance();
        return true;
    }

    /** Statement terminator: one or more newlines. */
    bool
    endOfLine()
    {
        if (cur().kind != Token::Kind::Newline)
            return fail(cur().pos, "expected end of line, got " +
                                       describe(cur()));
        skipNewlines();
        return true;
    }

    bool
    integer(const char *what, std::int64_t &value, Pos &pos)
    {
        if (cur().kind != Token::Kind::Word)
            return fail(cur().pos, std::string("expected ") + what +
                                       ", got " + describe(cur()));
        const std::string &text = cur().text;
        errno = 0;
        char *end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE)
            return fail(cur().pos,
                        std::string(what) + " '" + text +
                            "' is out of range");
        if (end == text.c_str() || *end != '\0')
            return fail(cur().pos, std::string("expected ") + what +
                                       " (an integer), got '" +
                                       text + "'");
        value = v;
        pos = cur().pos;
        advance();
        return true;
    }

    bool
    number(const char *what, double &value, Pos &pos)
    {
        if (cur().kind != Token::Kind::Word)
            return fail(cur().pos, std::string("expected ") + what +
                                       ", got " + describe(cur()));
        const std::string &text = cur().text;
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0' || errno == ERANGE)
            return fail(cur().pos, std::string("expected ") + what +
                                       " (a number), got '" + text +
                                       "'");
        value = v;
        pos = cur().pos;
        advance();
        return true;
    }

    bool
    ref(const char *what, AstRef &out)
    {
        return word(what, out.id, out.pos);
    }

    bool
    parseBenchmark(AstBenchmark &bench)
    {
        bench.pos = cur().pos;
        if (!keyword("benchmark"))
            return false;
        if (!word("benchmark name", bench.name, bench.namePos))
            return false;
        if (!punct(Token::Kind::LBrace, "'{'") || !endOfLine())
            return false;
        while (cur().kind != Token::Kind::RBrace) {
            if (cur().kind == Token::Kind::End)
                return fail(cur().pos,
                            "unclosed benchmark '" + bench.name +
                                "' (missing '}')");
            if (cur().kind != Token::Kind::Word)
                return fail(cur().pos,
                            "expected 'maindata', 'symbol', 'loop' "
                            "or '}', got " +
                                describe(cur()));
            if (cur().text == "maindata") {
                if (!parseMaindata(bench))
                    return false;
            } else if (cur().text == "symbol") {
                AstSymbol sym;
                if (!parseSymbol(sym))
                    return false;
                bench.symbols.push_back(std::move(sym));
            } else if (cur().text == "loop") {
                AstLoop loop;
                if (!parseLoop(loop))
                    return false;
                bench.loops.push_back(std::move(loop));
            } else {
                return fail(cur().pos,
                            "expected 'maindata', 'symbol', 'loop' "
                            "or '}', got " +
                                describe(cur()));
            }
        }
        advance(); // '}'
        return endOfLine();
    }

    bool
    parseMaindata(AstBenchmark &bench)
    {
        const Pos pos = cur().pos;
        advance(); // 'maindata'
        bool any = false;
        while (cur().kind == Token::Kind::Word) {
            if (cur().text == "size") {
                advance();
                if (!integer("maindata size", bench.mainSize,
                             bench.mainSizePos))
                    return false;
                bench.hasMainSize = true;
            } else if (cur().text == "share") {
                advance();
                if (!number("maindata share", bench.mainShare,
                            bench.mainSharePos))
                    return false;
                bench.hasMainShare = true;
            } else {
                return fail(cur().pos,
                            "expected 'size' or 'share', got " +
                                describe(cur()));
            }
            any = true;
        }
        if (!any)
            return fail(pos,
                        "maindata needs at least one of 'size N' "
                        "or 'share X'");
        return endOfLine();
    }

    bool
    parseSymbol(AstSymbol &sym)
    {
        sym.pos = cur().pos;
        advance(); // 'symbol'
        if (!word("symbol name", sym.name, sym.namePos))
            return false;
        if (!keyword("size"))
            return false;
        if (!integer("symbol size", sym.size, sym.sizePos))
            return false;
        if (cur().kind == Token::Kind::Word &&
            cur().text == "storage") {
            advance();
            if (!word("storage class", sym.storage,
                      sym.storagePos))
                return false;
            sym.hasStorage = true;
        }
        return endOfLine();
    }

    bool
    parseLoop(AstLoop &loop)
    {
        loop.pos = cur().pos;
        advance(); // 'loop'
        if (!word("loop name", loop.name, loop.namePos))
            return false;
        if (!keyword("trip"))
            return false;
        if (!integer("trip count", loop.trip, loop.tripPos))
            return false;
        if (cur().kind == Token::Kind::Word &&
            cur().text == "invocations") {
            advance();
            if (!integer("invocation count", loop.invocations,
                         loop.invocationsPos))
                return false;
            loop.hasInvocations = true;
        }
        if (!punct(Token::Kind::LBrace, "'{'") || !endOfLine())
            return false;
        while (cur().kind != Token::Kind::RBrace) {
            if (cur().kind == Token::Kind::End)
                return fail(cur().pos, "unclosed loop '" +
                                           loop.name +
                                           "' (missing '}')");
            AstStmt stmt;
            if (!parseLoopStmt(stmt))
                return false;
            loop.stmts.push_back(std::move(stmt));
        }
        advance(); // '}'
        return endOfLine();
    }

    bool
    parseLoopStmt(AstStmt &stmt)
    {
        if (cur().kind != Token::Kind::Word)
            return fail(cur().pos,
                        "expected an op line, 'dep', 'chain' or "
                        "'}', got " +
                            describe(cur()));
        if (cur().text == "dep") {
            stmt.kind = AstStmt::Kind::Dep;
            return parseDep(stmt.dep);
        }
        if (cur().text == "chain") {
            stmt.kind = AstStmt::Kind::Chain;
            return parseChain(stmt.chain);
        }
        stmt.kind = AstStmt::Kind::Op;
        return parseOp(stmt.op);
    }

    bool
    parseDep(AstDep &dep)
    {
        dep.pos = cur().pos;
        advance(); // 'dep'
        if (!ref("dependence source op", dep.src))
            return false;
        if (!punct(Token::Kind::Arrow, "'->'"))
            return false;
        if (!ref("dependence destination op", dep.dst))
            return false;
        if (!keyword("kind"))
            return false;
        if (!word("dependence kind", dep.kind, dep.kindPos))
            return false;
        if (cur().kind == Token::Kind::Word &&
            cur().text == "dist") {
            advance();
            if (!integer("dependence distance", dep.dist,
                         dep.distPos))
                return false;
            dep.hasDist = true;
        }
        return endOfLine();
    }

    bool
    parseChain(AstChain &chain)
    {
        chain.pos = cur().pos;
        advance(); // 'chain'
        while (cur().kind == Token::Kind::Word) {
            AstRef r;
            if (!ref("chain op", r))
                return false;
            chain.ops.push_back(std::move(r));
        }
        if (chain.ops.size() < 2)
            return fail(chain.pos,
                        "chain needs at least two memory ops");
        return endOfLine();
    }

    bool
    parseOp(AstOp &op)
    {
        op.pos = cur().pos;
        if (!word("op id", op.id, op.idPos))
            return false;
        if (!punct(Token::Kind::Equals, "'='"))
            return false;
        if (!word("op kind", op.kind, op.kindPos))
            return false;
        // A word that is not an attribute keyword right after the
        // kind is the memory symbol operand (`load src gran 2`).
        if (cur().kind == Token::Kind::Word &&
            !attrKeywords().count(cur().text)) {
            if (!word("symbol", op.symbol, op.symbolPos))
                return false;
        }
        while (cur().kind == Token::Kind::Word) {
            if (!parseOpAttr(op))
                return false;
        }
        return endOfLine();
    }

    bool
    parseOpAttr(AstOp &op)
    {
        const Token attr = cur();
        if (attr.text == "gran") {
            advance();
            op.hasGran = true;
            return integer("granularity", op.gran, op.granPos);
        }
        if (attr.text == "stride") {
            advance();
            op.stridePos = cur().pos;
            if (cur().kind == Token::Kind::Word &&
                cur().text == "unknown") {
                op.strideUnknown = true;
                advance();
                return true;
            }
            op.hasStride = true;
            return integer("stride", op.stride, op.stridePos);
        }
        if (attr.text == "indirect") {
            op.indirect = true;
            op.indirectPos = attr.pos;
            advance();
            return true;
        }
        if (attr.text == "range") {
            advance();
            op.hasRange = true;
            return integer("index range", op.range, op.rangePos);
        }
        if (attr.text == "offset") {
            advance();
            op.hasOffset = true;
            return integer("offset", op.offset, op.offsetPos);
        }
        if (attr.text == "invstride") {
            advance();
            op.hasInvstride = true;
            return integer("invocation stride", op.invstride,
                           op.invstridePos);
        }
        if (attr.text == "noattract") {
            op.noattract = true;
            advance();
            return true;
        }
        if (attr.text == "latency") {
            advance();
            op.hasLatency = true;
            return integer("latency", op.latency, op.latencyPos);
        }
        if (attr.text == "name") {
            advance();
            if (cur().kind != Token::Kind::String)
                return fail(cur().pos,
                            "expected a quoted display name, got " +
                                describe(cur()));
            op.display = cur().text;
            op.hasDisplay = true;
            advance();
            return true;
        }
        if (attr.text == "from") {
            advance();
            bool any = false;
            while (cur().kind == Token::Kind::Word &&
                   !attrKeywords().count(cur().text)) {
                AstRef r;
                if (!ref("operand op", r))
                    return false;
                op.from.push_back(std::move(r));
                any = true;
            }
            if (!any)
                return fail(attr.pos,
                            "'from' needs at least one op id");
            return true;
        }
        if (attr.text == "value") {
            advance();
            op.hasValue = true;
            return ref("store value op", op.value);
        }
        return fail(attr.pos,
                    "unknown op attribute '" + attr.text + "'");
    }

    std::vector<Token> toks_;
    std::size_t i_ = 0;
    std::optional<Diag> err_;
};

} // namespace

std::optional<Diag>
parseWvl(std::string_view source, std::vector<AstBenchmark> &out)
{
    std::vector<Token> tokens;
    if (auto diag = tokenize(source, tokens))
        return diag;
    return Parser(std::move(tokens)).run(out);
}

} // namespace vliw::lang
