#include "lang/lower.hh"

#include <algorithm>
#include <map>

#include "ddg/op_types.hh"
#include "lang/writer.hh"

namespace vliw::lang {

namespace {

/** Classic Levenshtein distance (inputs are short kind names). */
int
editDistance(const std::string &a, const std::string &b)
{
    std::vector<int> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = static_cast<int>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        int prev = row[0];
        row[0] = static_cast<int>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const int cur = row[j];
            row[j] = std::min(
                {row[j] + 1, row[j - 1] + 1,
                 prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
            prev = cur;
        }
    }
    return row[b.size()];
}

const std::vector<std::pair<std::string, OpKind>> &
opKindTable()
{
    static const std::vector<std::pair<std::string, OpKind>> table{
        {"load", OpKind::Load},     {"store", OpKind::Store},
        {"intalu", OpKind::IntAlu}, {"intmul", OpKind::IntMul},
        {"fpalu", OpKind::FpAlu},   {"fpmul", OpKind::FpMul},
        {"fpdiv", OpKind::FpDiv}};
    return table;
}

const std::vector<std::pair<std::string, DepKind>> &
depKindTable()
{
    static const std::vector<std::pair<std::string, DepKind>> table{
        {"flow", DepKind::RegFlow},    {"anti", DepKind::RegAnti},
        {"out", DepKind::RegOut},      {"memflow", DepKind::MemFlow},
        {"memanti", DepKind::MemAnti}, {"memout", DepKind::MemOut}};
    return table;
}

/** One lowering pass; holds the error slot so checks read flat. */
class Lowerer
{
  public:
    std::optional<Diag>
    run(const std::vector<AstBenchmark> &ast,
        std::vector<BenchmarkSpec> &out)
    {
        out.clear();
        std::map<std::string, bool> benchNames;
        for (const AstBenchmark &bench : ast) {
            if (!benchNames.emplace(bench.name, true).second)
                return Diag{bench.namePos,
                            "duplicate benchmark name '" +
                                bench.name + "'"};
            BenchmarkSpec spec;
            if (auto diag = lowerBenchmark(bench, spec))
                return diag;
            spec.fingerprint = wvlFingerprint(spec);
            out.push_back(std::move(spec));
        }
        return std::nullopt;
    }

  private:
    std::optional<Diag>
    lowerBenchmark(const AstBenchmark &bench, BenchmarkSpec &spec)
    {
        spec.name = bench.name;
        if (bench.hasMainSize) {
            if (bench.mainSize != 1 && bench.mainSize != 2 &&
                bench.mainSize != 4 && bench.mainSize != 8)
                return Diag{bench.mainSizePos,
                            "maindata size must be 1, 2, 4 or 8 "
                            "bytes"};
            spec.mainDataSize = static_cast<int>(bench.mainSize);
        }
        if (bench.hasMainShare) {
            if (!(bench.mainShare >= 0.0 &&
                  bench.mainShare <= 1.0))
                return Diag{bench.mainSharePos,
                            "maindata share must be within "
                            "[0, 1]"};
            spec.mainDataShare = bench.mainShare;
        }

        if (bench.symbols.size() >
            static_cast<std::size_t>(kMaxSymbolsPerBenchmark))
            return Diag{bench.pos,
                        "too many symbols (max " +
                            std::to_string(kMaxSymbolsPerBenchmark) +
                            ")"};
        std::map<std::string, SymbolId> symbolIds;
        std::vector<std::string> symbolNames;
        for (const AstSymbol &sym : bench.symbols) {
            if (symbolIds.count(sym.name))
                return Diag{sym.namePos, "duplicate symbol name '" +
                                             sym.name + "'"};
            if (sym.size < 1 || sym.size > kMaxSymbolBytes)
                return Diag{sym.sizePos,
                            "symbol size must be within [1, " +
                                std::to_string(kMaxSymbolBytes) +
                                "] bytes"};
            SymbolSpec::Storage storage = SymbolSpec::Storage::Global;
            if (sym.hasStorage) {
                if (sym.storage == "global")
                    storage = SymbolSpec::Storage::Global;
                else if (sym.storage == "stack")
                    storage = SymbolSpec::Storage::Stack;
                else if (sym.storage == "heap")
                    storage = SymbolSpec::Storage::Heap;
                else
                    return Diag{sym.storagePos,
                                "unknown storage class '" +
                                    sym.storage +
                                    "' (expected global, stack or "
                                    "heap)"};
            }
            symbolIds[sym.name] =
                spec.addSymbol(sym.name, sym.size, storage);
            symbolNames.push_back(sym.name);
        }

        if (bench.loops.empty())
            return Diag{bench.pos, "benchmark '" + bench.name +
                                       "' defines no loop"};
        if (bench.loops.size() >
            static_cast<std::size_t>(kMaxLoopsPerBenchmark))
            return Diag{bench.pos,
                        "too many loops (max " +
                            std::to_string(kMaxLoopsPerBenchmark) +
                            ")"};
        std::map<std::string, bool> loopNames;
        for (const AstLoop &loop : bench.loops) {
            if (!loopNames.emplace(loop.name, true).second)
                return Diag{loop.namePos, "duplicate loop name '" +
                                              loop.name + "'"};
            LoopSpec lowered;
            if (auto diag = lowerLoop(loop, symbolIds, symbolNames,
                                      lowered))
                return diag;
            spec.loops.push_back(std::move(lowered));
        }
        return std::nullopt;
    }

    std::optional<Diag>
    lowerLoop(const AstLoop &loop,
              const std::map<std::string, SymbolId> &symbolIds,
              const std::vector<std::string> &symbolNames,
              LoopSpec &out)
    {
        out.name = loop.name;
        if (loop.trip < 8)
            return Diag{loop.tripPos,
                        "trip count must be >= 8 (loops iterating "
                        "fewer times are not modulo-scheduled)"};
        if (loop.trip % 16 != 0)
            return Diag{loop.tripPos,
                        "trip count must be a multiple of 16 (so "
                        "every unroll factor divides it evenly)"};
        if (loop.trip > kMaxTripCount)
            return Diag{loop.tripPos,
                        "trip count must be <= " +
                            std::to_string(kMaxTripCount)};
        out.avgIterations = loop.trip;
        if (loop.invocations < 1 ||
            loop.invocations > kMaxInvocations)
            return Diag{loop.invocationsPos,
                        "invocations must be within [1, " +
                            std::to_string(kMaxInvocations) + "]"};
        out.invocations = static_cast<int>(loop.invocations);

        // Pass 1: create every node so dep lines may forward-ref.
        std::map<std::string, NodeId> nodeIds;
        std::vector<std::string> nodeNames;
        std::size_t opCount = 0;
        for (const AstStmt &stmt : loop.stmts) {
            if (stmt.kind != AstStmt::Kind::Op)
                continue;
            ++opCount;
            if (opCount >
                static_cast<std::size_t>(kMaxOpsPerLoop))
                return Diag{stmt.op.pos,
                            "too many ops in loop '" + loop.name +
                                "' (max " +
                                std::to_string(kMaxOpsPerLoop) +
                                ")"};
            if (auto diag = lowerOp(stmt.op, symbolIds, symbolNames,
                                    nodeIds, out))
                return diag;
            nodeNames.push_back(stmt.op.id);
        }
        if (opCount == 0)
            return Diag{loop.pos, "loop '" + loop.name +
                                      "' has no ops"};

        // Pass 2: edges, in statement order (the DDG is
        // append-only, so file order is edge order).
        edges_.clear();
        for (const AstStmt &stmt : loop.stmts) {
            std::optional<Diag> diag;
            switch (stmt.kind) {
            case AstStmt::Kind::Op:
                diag = opEdges(stmt.op, nodeIds, nodeNames, out);
                break;
            case AstStmt::Kind::Dep:
                diag = depEdge(stmt.dep, nodeIds, nodeNames, out);
                break;
            case AstStmt::Kind::Chain:
                diag = chainEdges(stmt.chain, nodeIds, nodeNames,
                                  out);
                break;
            }
            if (diag)
                return diag;
        }
        return findZeroCycle(out);
    }

    std::optional<Diag>
    lowerOp(const AstOp &op,
            const std::map<std::string, SymbolId> &symbolIds,
            const std::vector<std::string> &symbolNames,
            std::map<std::string, NodeId> &nodeIds,
            LoopSpec &out)
    {
        if (nodeIds.count(op.id))
            return Diag{op.idPos,
                        "duplicate op id '" + op.id + "'"};
        if (op.kind == "copy")
            return Diag{op.kindPos,
                        "'copy' is reserved for the scheduler's "
                        "inserted inter-cluster copies"};
        OpKind kind = OpKind::IntAlu;
        bool known = false;
        for (const auto &[name, k] : opKindTable()) {
            if (name == op.kind) {
                kind = k;
                known = true;
                break;
            }
        }
        if (!known) {
            std::vector<std::string> names;
            for (const auto &[name, k] : opKindTable())
                names.push_back(name);
            std::string msg =
                "unknown op kind '" + op.kind + "'";
            const std::string hint = didYouMean(op.kind, names);
            if (!hint.empty())
                msg += " (did you mean '" + hint + "'?)";
            return Diag{op.kindPos, std::move(msg)};
        }

        const bool isMem =
            kind == OpKind::Load || kind == OpKind::Store;
        const std::string display =
            op.hasDisplay ? op.display : op.id;
        if (!isMem) {
            // Memory attributes are meaningless off a load/store;
            // name the first offender instead of ignoring it.
            struct { bool set; Pos pos; const char *attr; } memAttrs[] = {
                {!op.symbol.empty(), op.symbolPos, "a data symbol"},
                {op.hasGran, op.granPos, "'gran'"},
                {op.hasStride || op.strideUnknown, op.stridePos,
                 "'stride'"},
                {op.indirect, op.indirectPos, "'indirect'"},
                {op.hasRange, op.rangePos, "'range'"},
                {op.hasOffset, op.offsetPos, "'offset'"},
                {op.hasInvstride, op.invstridePos, "'invstride'"},
                {op.noattract, op.pos, "'noattract'"},
            };
            for (const auto &a : memAttrs) {
                if (a.set)
                    return Diag{a.pos,
                                std::string(a.attr) +
                                    " only applies to load/store "
                                    "ops"};
            }
            if (op.hasValue)
                return Diag{op.value.pos,
                            "'value' only applies to store ops"};
            int latency = 0;
            if (op.hasLatency) {
                if (op.latency < 1 || op.latency > kMaxLatency)
                    return Diag{op.latencyPos,
                                "latency must be within [1, " +
                                    std::to_string(kMaxLatency) +
                                    "]"};
                latency = static_cast<int>(op.latency);
            }
            nodeIds[op.id] =
                out.body.addNode(kind, display, latency);
            return std::nullopt;
        }

        if (op.hasLatency)
            return Diag{op.latencyPos,
                        "memory ops have a fixed latency; drop "
                        "'latency'"};
        if (op.hasValue && kind != OpKind::Store)
            return Diag{op.value.pos,
                        "'value' only applies to store ops"};
        if (op.symbol.empty())
            return Diag{op.kindPos,
                        std::string(kind == OpKind::Load ? "load"
                                                         : "store") +
                            " needs a data symbol (e.g. '" +
                            (kind == OpKind::Load ? "load"
                                                  : "store") +
                            " SYM gran 4 stride 4')"};
        const auto sym = symbolIds.find(op.symbol);
        if (sym == symbolIds.end()) {
            std::string msg =
                "unknown symbol '" + op.symbol + "'";
            const std::string hint =
                didYouMean(op.symbol, symbolNames);
            if (!hint.empty())
                msg += " (did you mean '" + hint + "'?)";
            else if (symbolNames.empty())
                msg += " (no symbols declared; add 'symbol " +
                       op.symbol + " size N' to the benchmark)";
            return Diag{op.symbolPos, std::move(msg)};
        }

        MemAccessInfo info;
        info.isStore = kind == OpKind::Store;
        info.symbol = sym->second;
        info.granularity = 4;
        if (op.hasGran) {
            if (op.gran != 1 && op.gran != 2 && op.gran != 4 &&
                op.gran != 8)
                return Diag{op.granPos,
                            "granularity must be 1, 2, 4 or 8 "
                            "bytes"};
            info.granularity = static_cast<int>(op.gran);
        }
        if (op.indirect) {
            if (op.hasStride)
                return Diag{op.stridePos,
                            "an indirect access takes its stride "
                            "from the index stream; drop 'stride'"};
            info.indirect = true;
            info.stride = MemAccessInfo::kUnknownStride;
            if (op.hasRange) {
                if (op.range < 0 ||
                    op.range > kMaxAddressMagnitude)
                    return Diag{op.rangePos,
                                "index range must be within [0, "
                                "2^32]"};
                info.indexRange = op.range;
            }
        } else {
            if (op.hasRange)
                return Diag{op.rangePos,
                            "'range' only applies to indirect "
                            "accesses"};
            if (op.strideUnknown)
                return Diag{op.stridePos,
                            "a direct access needs a known stride; "
                            "use 'indirect' for pointer-chased "
                            "streams"};
            if (!op.hasStride)
                return Diag{op.kindPos,
                            "memory op needs 'stride N' or "
                            "'indirect'"};
            if (op.stride < -kMaxAddressMagnitude ||
                op.stride > kMaxAddressMagnitude)
                return Diag{op.stridePos,
                            "stride must be within [-2^32, 2^32]"};
            info.stride = op.stride;
        }
        if (op.hasOffset) {
            if (op.offset < 0 || op.offset > kMaxAddressMagnitude)
                return Diag{op.offsetPos,
                            "offset must be within [0, 2^32]"};
            info.offset = op.offset;
        }
        if (op.hasInvstride) {
            if (op.invstride < -kMaxAddressMagnitude ||
                op.invstride > kMaxAddressMagnitude)
                return Diag{op.invstridePos,
                            "invocation stride must be within "
                            "[-2^32, 2^32]"};
            info.invocationStride = op.invstride;
        }
        info.attractable = !op.noattract;
        nodeIds[op.id] = out.body.addMemNode(kind, info, display);
        return std::nullopt;
    }

    std::optional<Diag>
    resolveRef(const AstRef &ref,
               const std::map<std::string, NodeId> &nodeIds,
               const std::vector<std::string> &nodeNames,
               const char *what, NodeId &out)
    {
        const auto it = nodeIds.find(ref.id);
        if (it == nodeIds.end()) {
            std::string msg = std::string(what) + " '" + ref.id +
                              "' does not name an op in this loop";
            const std::string hint = didYouMean(ref.id, nodeNames);
            if (!hint.empty())
                msg += " (did you mean '" + hint + "'?)";
            return Diag{ref.pos, std::move(msg)};
        }
        out = it->second;
        return std::nullopt;
    }

    std::optional<Diag>
    addEdge(LoopSpec &out, NodeId src, NodeId dst, DepKind kind,
            int distance, Pos pos)
    {
        if (edges_.size() >=
            static_cast<std::size_t>(kMaxEdgesPerLoop))
            return Diag{pos,
                        "too many dependences in one loop (max " +
                            std::to_string(kMaxEdgesPerLoop) + ")"};
        out.body.addEdge(src, dst, kind, distance);
        edges_.push_back(Edge{src, dst, distance, pos});
        return std::nullopt;
    }

    std::optional<Diag>
    opEdges(const AstOp &op,
            const std::map<std::string, NodeId> &nodeIds,
            const std::vector<std::string> &nodeNames,
            LoopSpec &out)
    {
        const NodeId self = nodeIds.at(op.id);
        for (const AstRef &ref : op.from) {
            NodeId src = 0;
            if (auto diag = resolveRef(ref, nodeIds, nodeNames,
                                       "operand", src))
                return diag;
            if (auto diag = addEdge(out, src, self,
                                    DepKind::RegFlow, 0, ref.pos))
                return diag;
        }
        if (op.hasValue) {
            NodeId src = 0;
            if (auto diag = resolveRef(op.value, nodeIds, nodeNames,
                                       "store value", src))
                return diag;
            if (auto diag =
                    addEdge(out, src, self, DepKind::RegFlow, 0,
                            op.value.pos))
                return diag;
        }
        return std::nullopt;
    }

    std::optional<Diag>
    depEdge(const AstDep &dep,
            const std::map<std::string, NodeId> &nodeIds,
            const std::vector<std::string> &nodeNames,
            LoopSpec &out)
    {
        NodeId src = 0;
        NodeId dst = 0;
        if (auto diag = resolveRef(dep.src, nodeIds, nodeNames,
                                   "dependence source", src))
            return diag;
        if (auto diag = resolveRef(dep.dst, nodeIds, nodeNames,
                                   "dependence destination", dst))
            return diag;
        DepKind kind = DepKind::RegFlow;
        bool known = false;
        for (const auto &[name, k] : depKindTable()) {
            if (name == dep.kind) {
                kind = k;
                known = true;
                break;
            }
        }
        if (!known) {
            std::vector<std::string> names;
            for (const auto &[name, k] : depKindTable())
                names.push_back(name);
            std::string msg =
                "unknown dependence kind '" + dep.kind + "'";
            const std::string hint = didYouMean(dep.kind, names);
            if (!hint.empty())
                msg += " (did you mean '" + hint + "'?)";
            return Diag{dep.kindPos, std::move(msg)};
        }
        const bool memKind = kind == DepKind::MemFlow ||
                             kind == DepKind::MemAnti ||
                             kind == DepKind::MemOut;
        if (memKind && (!out.body.isMemNode(src) ||
                        !out.body.isMemNode(dst)))
            return Diag{dep.kindPos,
                        "memory dependences connect load/store "
                        "ops only"};
        int distance = 0;
        if (dep.hasDist) {
            if (dep.dist < 0 || dep.dist > kMaxDepDistance)
                return Diag{dep.distPos,
                            "dependence distance must be within "
                            "[0, " +
                                std::to_string(kMaxDepDistance) +
                                "]"};
            distance = static_cast<int>(dep.dist);
        }
        return addEdge(out, src, dst, kind, distance, dep.pos);
    }

    std::optional<Diag>
    chainEdges(const AstChain &chain,
               const std::map<std::string, NodeId> &nodeIds,
               const std::vector<std::string> &nodeNames,
               LoopSpec &out)
    {
        std::vector<NodeId> ops;
        for (const AstRef &ref : chain.ops) {
            NodeId id = 0;
            if (auto diag = resolveRef(ref, nodeIds, nodeNames,
                                       "chain op", id))
                return diag;
            if (!out.body.isMemNode(id))
                return Diag{ref.pos,
                            "chain links memory ops only ('" +
                                ref.id + "' is not a load/store)"};
            ops.push_back(id);
        }
        // Same edge-kind selection as KernelBuilder::chain().
        for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
            const bool aStore = out.body.memInfo(ops[i]).isStore;
            const bool bStore =
                out.body.memInfo(ops[i + 1]).isStore;
            DepKind kind = DepKind::MemAnti;
            if (aStore && bStore)
                kind = DepKind::MemOut;
            else if (aStore && !bStore)
                kind = DepKind::MemFlow;
            if (auto diag = addEdge(out, ops[i], ops[i + 1], kind,
                                    0, chain.ops[i + 1].pos))
                return diag;
        }
        return std::nullopt;
    }

    /**
     * A cycle of zero-distance dependences can never be modulo-
     * scheduled (every op would have to precede itself in the same
     * iteration); reject it with the cycle spelled out.
     */
    std::optional<Diag>
    findZeroCycle(const LoopSpec &loop)
    {
        const int n = loop.body.numNodes();
        std::vector<std::vector<std::size_t>> adj(
            static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < edges_.size(); ++e) {
            if (edges_[e].distance == 0)
                adj[static_cast<std::size_t>(edges_[e].src)]
                    .push_back(e);
        }
        // Colors: 0 unvisited, 1 on stack, 2 done.
        std::vector<int> color(static_cast<std::size_t>(n), 0);
        std::vector<std::size_t> parentEdge(
            static_cast<std::size_t>(n), 0);
        for (int start = 0; start < n; ++start) {
            if (color[static_cast<std::size_t>(start)] != 0)
                continue;
            std::vector<std::pair<NodeId, std::size_t>> stack;
            stack.push_back({start, 0});
            color[static_cast<std::size_t>(start)] = 1;
            while (!stack.empty()) {
                auto &[node, next] = stack.back();
                const auto &out =
                    adj[static_cast<std::size_t>(node)];
                if (next >= out.size()) {
                    color[static_cast<std::size_t>(node)] = 2;
                    stack.pop_back();
                    continue;
                }
                const std::size_t e = out[next++];
                const NodeId dst = edges_[e].dst;
                if (color[static_cast<std::size_t>(dst)] == 1) {
                    // Back edge: spell the cycle out of the stack.
                    std::vector<NodeId> cycle{dst};
                    for (auto it = stack.rbegin();
                         it != stack.rend(); ++it) {
                        cycle.push_back(it->first);
                        if (it->first == dst)
                            break;
                    }
                    std::reverse(cycle.begin(), cycle.end());
                    std::string msg =
                        "zero-distance dependence cycle: ";
                    for (std::size_t i = 0; i < cycle.size();
                         ++i) {
                        if (i)
                            msg += " -> ";
                        msg += nodeLabel(loop, cycle[i]);
                    }
                    msg += " -> " + nodeLabel(loop, dst) +
                           " (recurrences need dist >= 1)";
                    return Diag{edges_[e].pos, std::move(msg)};
                }
                if (color[static_cast<std::size_t>(dst)] == 0) {
                    color[static_cast<std::size_t>(dst)] = 1;
                    parentEdge[static_cast<std::size_t>(dst)] = e;
                    stack.push_back({dst, 0});
                }
            }
        }
        return std::nullopt;
    }

    static std::string
    nodeLabel(const LoopSpec &loop, NodeId id)
    {
        const std::string &name = loop.body.node(id).name;
        return name.empty() ? "n" + std::to_string(id) : name;
    }

    struct Edge
    {
        NodeId src = 0;
        NodeId dst = 0;
        int distance = 0;
        Pos pos;
    };
    std::vector<Edge> edges_;
};

} // namespace

std::string
didYouMean(const std::string &given,
           const std::vector<std::string> &candidates)
{
    std::string best;
    int bestDist = 3; // suggestions beyond edit distance 2 mislead
    for (const std::string &cand : candidates) {
        const int d = editDistance(given, cand);
        if (d < bestDist) {
            bestDist = d;
            best = cand;
        }
    }
    return best;
}

std::optional<Diag>
lowerWvl(const std::vector<AstBenchmark> &ast,
         std::vector<BenchmarkSpec> &out)
{
    return Lowerer().run(ast, out);
}

std::optional<Diag>
compileWvl(std::string_view source, std::vector<BenchmarkSpec> &out)
{
    std::vector<AstBenchmark> ast;
    if (auto diag = parseWvl(source, ast))
        return diag;
    return lowerWvl(ast, out);
}

} // namespace vliw::lang
