#include "lang/lexer.hh"

#include <sstream>

namespace vliw::lang {

namespace {

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' ||
           c == '-';
}

std::string
printableByte(char c)
{
    if (c >= 0x21 && c <= 0x7e)
        return std::string("'") + c + "'";
    std::ostringstream os;
    os << "byte 0x" << std::hex
       << (static_cast<unsigned>(c) & 0xffu);
    return os.str();
}

} // namespace

std::string
renderDiag(const Diag &diag, std::string_view source,
           std::string_view origin)
{
    std::ostringstream os;
    os << origin << ':' << diag.pos.line << ':' << diag.pos.col
       << ": error: " << diag.message;
    if (diag.pos.line < 1)
        return os.str();
    // Walk to the offending line for the snippet.
    std::size_t start = 0;
    int line = 1;
    while (line < diag.pos.line) {
        const std::size_t nl = source.find('\n', start);
        if (nl == std::string_view::npos)
            return os.str();
        start = nl + 1;
        ++line;
    }
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos)
        end = source.size();
    std::string_view text = source.substr(start, end - start);
    if (text.size() > 200)
        text = text.substr(0, 200);
    os << "\n  " << text << "\n  ";
    const int caret =
        diag.pos.col >= 1 &&
                diag.pos.col <= static_cast<int>(text.size()) + 1
            ? diag.pos.col
            : 1;
    for (int i = 1; i < caret; ++i) {
        // Keep tabs so the caret lines up under tabbed source.
        os << (text[static_cast<std::size_t>(i) - 1] == '\t' ? '\t'
                                                             : ' ');
    }
    os << '^';
    return os.str();
}

std::optional<Diag>
tokenize(std::string_view source, std::vector<Token> &out)
{
    out.clear();
    int line = 1;
    int col = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto push = [&](Token::Kind kind, std::string text, Pos pos) {
        out.push_back(Token{kind, std::move(text), pos});
    };

    while (i < n) {
        const char c = source[i];
        const Pos pos{line, col};
        if (c == '\n') {
            push(Token::Kind::Newline, "", pos);
            ++i;
            ++line;
            col = 1;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            ++col;
            continue;
        }
        if (c == '#') {
            while (i < n && source[i] != '\n') {
                ++i;
                ++col;
            }
            continue;
        }
        if (c == '{') {
            push(Token::Kind::LBrace, "{", pos);
            ++i;
            ++col;
            continue;
        }
        if (c == '}') {
            push(Token::Kind::RBrace, "}", pos);
            ++i;
            ++col;
            continue;
        }
        if (c == '=') {
            push(Token::Kind::Equals, "=", pos);
            ++i;
            ++col;
            continue;
        }
        if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            push(Token::Kind::Arrow, "->", pos);
            i += 2;
            col += 2;
            continue;
        }
        if (c == '"') {
            std::string text;
            ++i;
            ++col;
            while (true) {
                if (i >= n || source[i] == '\n')
                    return Diag{pos, "unterminated string"};
                const char s = source[i];
                if (s == '"') {
                    ++i;
                    ++col;
                    break;
                }
                if (s == '\\') {
                    if (i + 1 >= n)
                        return Diag{pos, "unterminated string"};
                    const char esc = source[i + 1];
                    if (esc != '"' && esc != '\\')
                        return Diag{
                            Pos{line, col},
                            std::string("unsupported string escape "
                                        "'\\") +
                                esc + "'"};
                    text += esc;
                    i += 2;
                    col += 2;
                    continue;
                }
                text += s;
                ++i;
                ++col;
            }
            push(Token::Kind::String, std::move(text), pos);
            continue;
        }
        if (isWordChar(c)) {
            std::string text;
            while (i < n && isWordChar(source[i])) {
                // Stop so `a->b` lexes as word, arrow, word.
                if (source[i] == '-' && i + 1 < n &&
                    source[i + 1] == '>')
                    break;
                text += source[i];
                ++i;
                ++col;
            }
            push(Token::Kind::Word, std::move(text), pos);
            continue;
        }
        return Diag{pos, "unexpected " + printableByte(c)};
    }
    push(Token::Kind::Newline, "", Pos{line, col});
    push(Token::Kind::End, "", Pos{line, col});
    return std::nullopt;
}

} // namespace vliw::lang
