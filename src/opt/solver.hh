/**
 * @file
 * Exact modulo scheduler: branch-and-bound / CP-style search over
 * (II, per-node cycle, cluster) assignments plus inter-cluster copy
 * start times, under the same legality model as validateSchedule()
 * and registerPressureOk().
 *
 * The search proves minimality of the initiation interval: starting
 * from MII it runs a complete search per candidate II (MinDist
 * all-pairs longest paths prune the windows; the Mrt is the resource
 * propagator; memory chains hard-pin clusters; copies branch over
 * every distinct bus start in one II worth of slots), so an II that
 * comes back empty is *proved* infeasible and the first feasible II
 * is minimal. The heuristic schedule passed in seeds the search with
 * an upper bound and remains the fallback when the budget runs out.
 *
 * Completeness caveat (documented in docs/SCHEDULERS.md): schedules
 * are searched within a bounded horizon of max(critical path, seed
 * span) plus a generous slack of pipeline stages, so "proven" means
 * proven within that stage bound — the standard bound used by exact
 * modulo-scheduling formulations.
 */

#ifndef WIVLIW_OPT_SOLVER_HH
#define WIVLIW_OPT_SOLVER_HH

#include <cstdint>

#include "ddg/ddg.hh"
#include "machine/machine_config.hh"
#include "opt/budget.hh"
#include "sched/schedule.hh"
#include "sched/scheduler.hh"

namespace vliw::opt {

/** What one exact-scheduling run established. */
enum class SolveStatus : std::uint8_t
{
    /** schedule has the minimal II (every smaller II refuted). */
    Proven,
    /** Solver-found schedule better than the seed, no proof yet. */
    Feasible,
    /** Budget ran out before the solver beat or proved the seed. */
    BudgetExhausted,
};

/** Wire/report names: "proven", "feasible", "budget-exhausted". */
const char *solveStatusName(SolveStatus status);

/** Search counters, also mirrored into the metrics registry. */
struct SolveStats
{
    /** Placement attempts explored (the budgeted unit). */
    std::uint64_t nodes = 0;
    /** Candidates rejected by bounds, resources or copy routing. */
    std::uint64_t prunes = 0;
    /** IIs refuted by a completed (empty) search. */
    std::uint32_t iisRefuted = 0;
    /** True when the wall-clock budget expired (ms budget only). */
    bool timedOut = false;
};

/** Result of solveLoop(). */
struct SolveOutcome
{
    SolveStatus status = SolveStatus::BudgetExhausted;
    /**
     * The best known schedule: the solver's certificate when it beat
     * the seed, otherwise the seed itself (always legal, always
     * usable downstream).
     */
    Schedule schedule;
    /** Largest II proved infeasible, plus one (>= MII). */
    int lowerBound = 0;
    SolveStats stats;
};

/**
 * Exactly schedule one loop. @p seed is a legal schedule produced by
 * a heuristic (the upper bound and fallback); @p mii the loop's MII.
 * Honors @p opts.useChains, @p opts.checkRegPressure and
 * @p opts.cancel (cancellation throws CancelledError, leaving no
 * shared state behind — the solver owns all of its scratch).
 */
SolveOutcome solveLoop(const Ddg &ddg, const LatencyMap &lat,
                       const MachineConfig &cfg,
                       const SchedulerOptions &opts,
                       const SolverBudget &budget,
                       const Schedule &seed, int mii);

} // namespace vliw::opt

#endif // WIVLIW_OPT_SOLVER_HH
