#include "gap_report.hh"

#include <map>
#include <ostream>

#include "engine/experiment.hh"
#include "support/json.hh"

namespace vliw::opt {

namespace {

/** Per-(bench, arch) slice of the sweep, in grid order. */
struct CellGroup
{
    /** Sums over the optimal arm's kernels; valid when hasOptimal. */
    bool hasOptimal = false;
    int iiOptimal = 0;
    std::int64_t cyclesOptimal = 0;
    std::string solver;
    int lowerBound = 0;
    std::uint64_t solverNodes = 0;
    /** (scheduler label, II sum, cycles) per heuristic arm. */
    std::vector<GapCell> heuristicRows;
};

/** Fixed-point percentage so CSV cells stay byte-stable. */
std::string
pctCell(double pct)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", pct);
    return buf;
}

int
sumIi(const engine::ExperimentResult &r)
{
    int ii = 0;
    for (const LoopRun &lr : r.run().loops)
        ii += lr.ii;
    return ii;
}

} // namespace

std::size_t
GapReport::provenCount() const
{
    std::size_t n = 0;
    // Each (bench, arch) group repeats the solver outcome on every
    // heuristic row; count distinct groups, not rows.
    const GapCell *last = nullptr;
    for (const GapCell &c : cells) {
        const bool newGroup = !last || last->bench != c.bench ||
            last->arch != c.arch;
        if (newGroup && c.solver == "proven")
            ++n;
        last = &c;
    }
    return n;
}

bool
GapReport::gatePasses() const
{
    if (provenCount() == 0)
        return false;
    for (const GapCell &c : cells) {
        // A heuristic strictly below a *proven* minimal II means
        // the certificate is wrong — fail loudly.
        if (c.solver == "proven" && c.ii < c.iiOptimal)
            return false;
    }
    return true;
}

api::Result<GapReport>
runGapReport(api::Session &session, const GapReportOptions &opts)
{
    api::SweepRequest req;
    req.workloads = opts.benches;
    req.archs = opts.archs;
    req.schedulers = opts.heuristics;
    req.schedulers.push_back(opts.optimalKey);
    // Unrolled kernels explode the solver's search space; the gap
    // is a property of the scheduling problem, so measure it on the
    // un-unrolled loops (where proofs are reachable in budget).
    req.unrolls = {"none"};
    req.jobs = opts.jobs;
    req.options = opts.options;

    auto sweep = session.sweep(req);
    if (!sweep.ok())
        return sweep.status();
    const api::SweepResult &sr = sweep.value();
    if (!sr.status.ok())
        return sr.status;

    // Group the grid-ordered results by (bench, arch). Grid order
    // keeps one group's cells adjacent, so first-encounter order of
    // the keys is the report order.
    std::vector<std::pair<std::string, std::string>> order;
    std::map<std::pair<std::string, std::string>, CellGroup> groups;
    for (const engine::ExperimentResult &r : sr.experiments) {
        if (r.failed())
            continue;   // an errored arm has no row to compare
        const auto key = std::make_pair(r.spec.bench,
                                        r.spec.arch.name);
        auto it = groups.find(key);
        if (it == groups.end()) {
            order.push_back(key);
            it = groups.emplace(key, CellGroup{}).first;
        }
        CellGroup &g = it->second;
        if (r.spec.opts.optimalSolver) {
            g.hasOptimal = true;
            g.iiOptimal = sumIi(r);
            g.cyclesOptimal = r.run().total.totalCycles;
            g.solver = r.solverOutcome;
            for (const LoopRun &lr : r.run().loops) {
                g.lowerBound += lr.solverLowerBound;
                g.solverNodes += lr.solverNodes;
            }
        } else {
            GapCell row;
            row.bench = r.spec.bench;
            row.arch = r.spec.arch.name;
            row.scheduler = engine::schedulerLabel(r.spec.opts);
            row.ii = sumIi(r);
            row.cycles = r.run().total.totalCycles;
            g.heuristicRows.push_back(std::move(row));
        }
    }

    GapReport report;
    report.cache = sr.cache;
    for (const auto &key : order) {
        CellGroup &g = groups[key];
        if (!g.hasOptimal)
            continue;   // nothing to measure the gap against
        for (GapCell &row : g.heuristicRows) {
            row.iiOptimal = g.iiOptimal;
            row.iiGap = row.ii - g.iiOptimal;
            row.cyclesOptimal = g.cyclesOptimal;
            row.cycleGapPct = g.cyclesOptimal > 0
                ? 100.0 *
                    double(row.cycles - g.cyclesOptimal) /
                    double(g.cyclesOptimal)
                : 0.0;
            row.solver = g.solver;
            row.lowerBound = g.lowerBound;
            row.solverNodes = g.solverNodes;
            report.cells.push_back(std::move(row));
        }
    }
    return report;
}

TextTable
gapTable(const GapReport &report)
{
    TextTable tab({"benchmark", "arch", "scheduler", "ii",
                   "ii opt", "ii gap", "cycles", "cycles opt",
                   "gap %", "solver", "lb", "nodes"});
    for (const GapCell &c : report.cells) {
        tab.newRow().cell(c.bench);
        tab.cell(c.arch);
        tab.cell(c.scheduler);
        tab.cell(std::int64_t(c.ii));
        tab.cell(std::int64_t(c.iiOptimal));
        tab.cell(std::int64_t(c.iiGap));
        tab.cell(c.cycles);
        tab.cell(c.cyclesOptimal);
        tab.cell(pctCell(c.cycleGapPct));
        tab.cell(c.solver);
        tab.cell(std::int64_t(c.lowerBound));
        tab.cell(c.solverNodes);
    }
    return tab;
}

void
writeGapCsv(std::ostream &os, const GapReport &report)
{
    os << "benchmark,arch,scheduler,ii,ii_optimal,ii_gap,cycles,"
          "cycles_optimal,cycle_gap_pct,solver,lower_bound,"
          "solver_nodes\n";
    for (const GapCell &c : report.cells) {
        os << c.bench << ',' << c.arch << ',' << c.scheduler << ','
           << c.ii << ',' << c.iiOptimal << ',' << c.iiGap << ','
           << c.cycles << ',' << c.cyclesOptimal << ','
           << pctCell(c.cycleGapPct) << ',' << c.solver << ','
           << c.lowerBound << ',' << c.solverNodes << '\n';
    }
}

void
writeGapJson(std::ostream &os, const GapReport &report)
{
    os << "{\n  \"gap_report\": [";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const GapCell &c = report.cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"benchmark\": \"" << json::escape(c.bench)
           << "\", \"arch\": \"" << json::escape(c.arch)
           << "\", \"scheduler\": \"" << json::escape(c.scheduler)
           << "\", \"ii\": " << c.ii
           << ", \"ii_optimal\": " << c.iiOptimal
           << ", \"ii_gap\": " << c.iiGap
           << ", \"cycles\": " << c.cycles
           << ", \"cycles_optimal\": " << c.cyclesOptimal
           << ", \"cycle_gap_pct\": " << pctCell(c.cycleGapPct)
           << ", \"solver\": \"" << json::escape(c.solver)
           << "\", \"lower_bound\": " << c.lowerBound
           << ", \"solver_nodes\": " << c.solverNodes << "}";
    }
    os << "\n  ],\n  \"proven_cells\": " << report.provenCount()
       << ",\n  \"gate\": "
       << (report.gatePasses() ? "true" : "false") << "\n}\n";
}

} // namespace vliw::opt
