#include "opt/solver.hh"

#include <algorithm>
#include <chrono>
#include <climits>
#include <limits>
#include <optional>
#include <vector>

#include "ddg/chains.hh"
#include "sched/mrt.hh"
#include "sched/reg_pressure.hh"
#include "sched/time_frames.hh"
#include "support/errors.hh"
#include "support/metrics.hh"

namespace vliw::opt {

namespace {

/** No-longest-path sentinel, far from any real distance. */
constexpr int kNeg = std::numeric_limits<int>::min() / 4;
/** Extra pipeline stages beyond max(critical path, seed span). */
constexpr int kSlackStages = 4;
/** Budget ticks between cancel / wall-clock probes. */
constexpr std::uint64_t kProbeMask = 1023;

struct SolverMetrics
{
    metrics::Counter &nodes;
    metrics::Counter &prunes;
    metrics::Counter &proofs;
    metrics::Counter &feasible;
    metrics::Counter &exhausted;
    metrics::Counter &timeouts;
    metrics::Counter &refutedIis;
};

SolverMetrics &
solverMetrics()
{
    static SolverMetrics m{
        metrics::registry().counter("wivliw_solver_nodes_total"),
        metrics::registry().counter("wivliw_solver_prunes_total"),
        metrics::registry().counter("wivliw_solver_proofs_total"),
        metrics::registry().counter("wivliw_solver_feasible_total"),
        metrics::registry().counter(
            "wivliw_solver_budget_exhausted_total"),
        metrics::registry().counter("wivliw_solver_timeouts_total"),
        metrics::registry().counter(
            "wivliw_solver_iis_refuted_total"),
    };
    return m;
}

/** A cross-cluster transfer the current placement requires. */
struct PendingCopy
{
    NodeId producer;
    int toCluster;
    /** Earliest bus start: producer cycle + producer latency. */
    int valueAt;
    /** Latest ready cycle any requiring consumer tolerates. */
    int need;
};

/**
 * One complete search, reusable across II levels. All scratch is
 * owned here: cancellation unwinds through plain locals and leaves
 * nothing behind for the next compile to trip over.
 */
class ExactSearch
{
  public:
    ExactSearch(const Ddg &ddg, const LatencyMap &lat,
                const MachineConfig &cfg,
                const SchedulerOptions &opts,
                const SolverBudget &budget)
        : ddg_(ddg), lat_(lat), cfg_(cfg), opts_(opts),
          budget_(budget), n_(ddg.numNodes()),
          numClusters_(cfg.numClusters),
          busLat_(cfg.regBusLatency)
    {
        ew_.build(ddg, lat);
        graph_.build(ddg, ew_);
        chainIdOf_.assign(std::size_t(n_), -1);
        if (opts.useChains) {
            chains_.emplace(ddg);
            for (NodeId v = 0; v < n_; ++v)
                if (ddg.isMemNode(v))
                    chainIdOf_[std::size_t(v)] =
                        chains_->chainOf(v);
        }
        fuKind_.resize(std::size_t(n_));
        for (NodeId v = 0; v < n_; ++v)
            fuKind_[std::size_t(v)] = fuForOp(ddg.node(v).kind);
        dist_.assign(std::size_t(n_) * std::size_t(n_), kNeg);
        cycle_.assign(std::size_t(n_), 0);
        placed_.assign(std::size_t(n_), 0);
        cluster_.assign(std::size_t(n_), -1);
        copyStart_.assign(std::size_t(n_) * std::size_t(numClusters_),
                          INT_MIN);
        chainCluster_.assign(
            chains_ ? std::size_t(chains_->numChains()) : 0, -1);
        pending_.resize(std::size_t(n_));
        order_.resize(std::size_t(n_));
        if (budget_.maxMillis > 0)
            deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budget_.maxMillis);
    }

    enum class LevelResult { Solved, Infeasible, Exhausted };

    /**
     * Complete search for any legal schedule at @p ii, spending
     * global search nodes up to @p nodeCap. Solved leaves the
     * certificate in found().
     */
    LevelResult
    searchII(int ii, std::uint64_t nodeCap, int seedSpan)
    {
        ii_ = ii;
        nodeCap_ = nodeCap;
        exhausted_ = false;
        if (!buildMinDist())
            return LevelResult::Infeasible;

        computeTimeFrames(graph_, ii_, frames_, framesScratch_);
        horizon_ =
            std::max(frames_.length + 1, seedSpan) +
            kSlackStages * ii_;

        for (NodeId v = 0; v < n_; ++v)
            order_[std::size_t(v)] = v;
        std::sort(order_.begin(), order_.end(),
                  [&](NodeId a, NodeId b) {
                      const int ma = frames_.mobility(a);
                      const int mb = frames_.mobility(b);
                      if (ma != mb)
                          return ma < mb;
                      if (frames_.asap[std::size_t(a)] !=
                          frames_.asap[std::size_t(b)])
                          return frames_.asap[std::size_t(a)] <
                              frames_.asap[std::size_t(b)];
                      return a < b;
                  });

        mrt_.reset(cfg_, ii_);
        std::fill(placed_.begin(), placed_.end(), std::uint8_t(0));
        std::fill(cluster_.begin(), cluster_.end(), -1);
        std::fill(copyStart_.begin(), copyStart_.end(), INT_MIN);
        std::fill(chainCluster_.begin(), chainCluster_.end(), -1);
        openClusters_ = 0;
        minCycle_ = INT_MAX;
        maxCycle_ = INT_MIN;

        if (dfs(0))
            return LevelResult::Solved;
        return exhausted_ ? LevelResult::Exhausted
                          : LevelResult::Infeasible;
    }

    const Schedule &found() const { return found_; }
    std::uint64_t nodes() const { return nodes_; }
    std::uint64_t prunes() const { return prunes_; }
    bool timedOut() const { return timedOut_; }

  private:
    /**
     * All-pairs longest paths with weights latency - II * distance
     * (no bus latency: a sound relaxation for window pruning).
     * False when some node reaches itself with positive length —
     * the recurrence proof that @p ii_ is infeasible.
     */
    bool
    buildMinDist()
    {
        const std::size_t n = std::size_t(n_);
        std::fill(dist_.begin(), dist_.end(), kNeg);
        for (std::size_t v = 0; v < n; ++v)
            dist_[v * n + v] = 0;
        for (NodeId v = 0; v < n_; ++v) {
            const auto first = graph_.outOff[std::size_t(v)];
            const auto last = graph_.outOff[std::size_t(v) + 1];
            for (auto i = first; i < last; ++i) {
                const SchedGraph::Arc &a = graph_.out[std::size_t(i)];
                const int w = a.latency - ii_ * a.distance;
                int &slot =
                    dist_[std::size_t(v) * n + std::size_t(a.other)];
                slot = std::max(slot, w);
            }
        }
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t i = 0; i < n; ++i) {
                const int ik = dist_[i * n + k];
                if (ik <= kNeg)
                    continue;
                const int *rowK = &dist_[k * n];
                int *rowI = &dist_[i * n];
                for (std::size_t j = 0; j < n; ++j) {
                    if (rowK[j] <= kNeg)
                        continue;
                    rowI[j] = std::max(rowI[j], ik + rowK[j]);
                }
            }
        for (std::size_t v = 0; v < n; ++v)
            if (dist_[v * n + v] > 0)
                return false;
        return true;
    }

    /** Count one search node; false when the budget is spent. */
    bool
    tick()
    {
        ++nodes_;
        if (nodes_ > nodeCap_) {
            exhausted_ = true;
            return false;
        }
        if ((nodes_ & kProbeMask) == 0) {
            if (opts_.cancel &&
                opts_.cancel->load(std::memory_order_relaxed))
                throw CancelledError(
                    "exact scheduling cancelled mid-search");
            if (deadline_ &&
                std::chrono::steady_clock::now() > *deadline_) {
                timedOut_ = true;
                exhausted_ = true;
                return false;
            }
        }
        return true;
    }

    /** Place order_[idx] and everything after it. */
    bool
    dfs(int idx)
    {
        if (idx == n_)
            return acceptLeaf();

        const NodeId v = order_[std::size_t(idx)];
        const std::size_t n = std::size_t(n_);

        // Dependence window against every placed node, via MinDist.
        int lb = kNeg;
        int ub = -kNeg;
        for (int j = 0; j < idx; ++j) {
            const std::size_t u = std::size_t(order_[std::size_t(j)]);
            const int fwd = dist_[u * n + std::size_t(v)];
            if (fwd > kNeg)
                lb = std::max(lb, cycle_[u] + fwd);
            const int back = dist_[std::size_t(v) * n + u];
            if (back > kNeg)
                ub = std::min(ub, cycle_[u] - back);
        }
        // The stage horizon tethers components the MinDist matrix
        // does not connect, and bounds the schedule span overall.
        if (idx == 0) {
            lb = ub = 0; // shift-invariance: pin the first node
        } else {
            lb = std::max(lb, maxCycle_ - (horizon_ - 1));
            ub = std::min(ub, minCycle_ + (horizon_ - 1));
        }
        if (lb > ub) {
            ++prunes_;
            return false;
        }

        const int chain = chainIdOf_[std::size_t(v)];
        const int pinned =
            chain >= 0 ? chainCluster_[std::size_t(chain)] : -1;

        for (int t = lb; t <= ub; ++t) {
            // Identical clusters are interchangeable: opening a new
            // one is only tried once per depth (symmetry breaking).
            const int firstCluster = pinned >= 0 ? pinned : 0;
            const int lastCluster = pinned >= 0
                ? pinned
                : std::min(numClusters_ - 1, openClusters_);
            for (int c = firstCluster; c <= lastCluster; ++c) {
                if (!tick())
                    return false;
                if (tryPlace(idx, v, t, c, chain))
                    return true;
                if (exhausted_)
                    return false;
            }
        }
        return false;
    }

    /**
     * Attempt (cycle @p t, cluster @p c) for @p v: FU slot, copy
     * requirements against placed neighbours, then the rest of the
     * tree. Undone completely on failure.
     */
    bool
    tryPlace(int idx, NodeId v, int t, int c, int chain)
    {
        if (!mrt_.fuFree(c, fuKind_[std::size_t(v)], t)) {
            ++prunes_;
            return false;
        }

        // Gather the transfers this placement requires; reject when
        // an already-committed copy arrives too late.
        auto &pend = pending_[std::size_t(idx)];
        pend.clear();
        const auto inFirst = graph_.inOff[std::size_t(v)];
        const auto inLast = graph_.inOff[std::size_t(v) + 1];
        for (auto i = inFirst; i < inLast; ++i) {
            const SchedGraph::Arc &a = graph_.in[std::size_t(i)];
            const std::size_t u = std::size_t(a.other);
            if (!a.regFlow || !placed_[u] || cluster_[u] == c)
                continue;
            const int need = t + ii_ * a.distance;
            const int committed =
                copyStart_[u * std::size_t(numClusters_) +
                           std::size_t(c)];
            if (committed != INT_MIN) {
                if (committed + busLat_ > need) {
                    ++prunes_;
                    return false;
                }
                continue;
            }
            mergePending(pend, a.other, c,
                         cycle_[u] + lat_(a.other), need);
        }
        const auto outFirst = graph_.outOff[std::size_t(v)];
        const auto outLast = graph_.outOff[std::size_t(v) + 1];
        for (auto i = outFirst; i < outLast; ++i) {
            const SchedGraph::Arc &a = graph_.out[std::size_t(i)];
            const std::size_t s = std::size_t(a.other);
            if (!a.regFlow || !placed_[s] || cluster_[s] == c)
                continue;
            const int need = cycle_[s] + ii_ * a.distance;
            mergePending(pend, v, cluster_[s], t + lat_(v), need);
        }
        for (const PendingCopy &pc : pend) {
            if (pc.valueAt + busLat_ > pc.need) {
                ++prunes_;
                return false;
            }
        }

        mrt_.reserveFu(c, fuKind_[std::size_t(v)], t);
        placed_[std::size_t(v)] = 1;
        cycle_[std::size_t(v)] = t;
        cluster_[std::size_t(v)] = c;
        const bool boundChain =
            chain >= 0 && chainCluster_[std::size_t(chain)] < 0;
        if (boundChain)
            chainCluster_[std::size_t(chain)] = c;
        const bool openedCluster = c == openClusters_;
        if (openedCluster)
            ++openClusters_;
        const int savedMin = minCycle_;
        const int savedMax = maxCycle_;
        minCycle_ = std::min(minCycle_, t);
        maxCycle_ = std::max(maxCycle_, t);

        if (scheduleCopies(idx, 0))
            return true;

        minCycle_ = savedMin;
        maxCycle_ = savedMax;
        if (openedCluster)
            --openClusters_;
        if (boundChain)
            chainCluster_[std::size_t(chain)] = -1;
        cluster_[std::size_t(v)] = -1;
        placed_[std::size_t(v)] = 0;
        mrt_.releaseFu(c, fuKind_[std::size_t(v)], t);
        return false;
    }

    static void
    mergePending(std::vector<PendingCopy> &pend, NodeId producer,
                 int toCluster, int valueAt, int need)
    {
        for (PendingCopy &pc : pend) {
            if (pc.producer == producer &&
                pc.toCluster == toCluster) {
                pc.need = std::min(pc.need, need);
                return;
            }
        }
        pend.push_back(PendingCopy{producer, toCluster, valueAt,
                                   need});
    }

    /**
     * Branch the bus start of pending copy @p k of depth @p idx over
     * every free slot in one II worth of starts (later starts repeat
     * the same modulo rows with a strictly worse ready cycle), then
     * descend to the next DDG node.
     */
    bool
    scheduleCopies(int idx, std::size_t k)
    {
        auto &pend = pending_[std::size_t(idx)];
        if (k == pend.size())
            return dfs(idx + 1);

        const PendingCopy &pc = pend[k];
        const int last =
            std::min(pc.need - busLat_, pc.valueAt + ii_ - 1);
        const std::size_t slot =
            std::size_t(pc.producer) * std::size_t(numClusters_) +
            std::size_t(pc.toCluster);
        int s = mrt_.firstFreeBusStart(pc.valueAt, last);
        if (s == INT_MIN)
            ++prunes_;
        while (s != INT_MIN) {
            if (!tick())
                return false;
            mrt_.reserveBus(s);
            copyStart_[slot] = s;
            if (scheduleCopies(idx, k + 1))
                return true;
            copyStart_[slot] = INT_MIN;
            mrt_.releaseBus(s);
            if (exhausted_ || s >= last)
                return false;
            s = mrt_.firstFreeBusStart(s + 1, last);
        }
        return false;
    }

    /**
     * Materialise the complete assignment, normalise it exactly like
     * the heuristic scheduler, and hold it to the same oracle —
     * validateSchedule() plus register pressure.
     */
    bool
    acceptLeaf()
    {
        Schedule sched;
        sched.ii = ii_;
        sched.ops.resize(std::size_t(n_));
        int minCycle = INT_MAX;
        int maxCycle = INT_MIN;
        for (NodeId v = 0; v < n_; ++v) {
            sched.ops[std::size_t(v)].cycle =
                cycle_[std::size_t(v)];
            sched.ops[std::size_t(v)].cluster =
                cluster_[std::size_t(v)];
            minCycle = std::min(minCycle, cycle_[std::size_t(v)]);
            maxCycle = std::max(maxCycle, cycle_[std::size_t(v)]);
        }
        for (NodeId p = 0; p < n_; ++p)
            for (int d = 0; d < numClusters_; ++d) {
                const int start =
                    copyStart_[std::size_t(p) *
                                   std::size_t(numClusters_) +
                               std::size_t(d)];
                if (start == INT_MIN)
                    continue;
                sched.copies.push_back(
                    CopyOp{p, cluster_[std::size_t(p)], d, start,
                           start + busLat_});
                minCycle = std::min(minCycle, start);
            }
        if (minCycle != 0) {
            for (PlacedOp &op : sched.ops)
                op.cycle -= minCycle;
            for (CopyOp &cp : sched.copies) {
                cp.busStart -= minCycle;
                cp.readyCycle -= minCycle;
            }
            maxCycle -= minCycle;
        }
        sched.length = maxCycle + 1;
        sched.stageCount = maxCycle / ii_ + 1;

        const MemChains *chains =
            chains_ ? &*chains_ : nullptr;
        if (validateSchedule(ddg_, lat_, cfg_, sched, chains)) {
            ++prunes_; // defensive: the search should never get here
            return false;
        }
        if (opts_.checkRegPressure &&
            !registerPressureOk(ddg_, lat_, cfg_, sched,
                                regScratch_)) {
            ++prunes_;
            return false;
        }
        found_ = std::move(sched);
        return true;
    }

    const Ddg &ddg_;
    const LatencyMap &lat_;
    const MachineConfig &cfg_;
    const SchedulerOptions &opts_;
    const SolverBudget &budget_;
    const int n_;
    const int numClusters_;
    const int busLat_;

    EdgeWeights ew_;
    SchedGraph graph_;
    std::optional<MemChains> chains_;
    std::vector<int> chainIdOf_;
    std::vector<FuKind> fuKind_;

    int ii_ = 0;
    int horizon_ = 0;
    std::vector<int> dist_;
    TimeFrames frames_;
    TimeFramesScratch framesScratch_;
    std::vector<NodeId> order_;
    Mrt mrt_;
    std::vector<std::uint8_t> placed_;
    std::vector<int> cycle_;
    std::vector<int> cluster_;
    std::vector<int> copyStart_;
    std::vector<int> chainCluster_;
    std::vector<std::vector<PendingCopy>> pending_;
    int openClusters_ = 0;
    int minCycle_ = 0;
    int maxCycle_ = 0;

    std::uint64_t nodes_ = 0;
    std::uint64_t prunes_ = 0;
    std::uint64_t nodeCap_ = 0;
    bool exhausted_ = false;
    bool timedOut_ = false;
    std::optional<std::chrono::steady_clock::time_point> deadline_;
    RegPressureScratch regScratch_;
    Schedule found_;
};

} // namespace

const char *
solveStatusName(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Proven:          return "proven";
      case SolveStatus::Feasible:        return "feasible";
      case SolveStatus::BudgetExhausted: return "budget-exhausted";
    }
    return "budget-exhausted";
}

SolveOutcome
solveLoop(const Ddg &ddg, const LatencyMap &lat,
          const MachineConfig &cfg, const SchedulerOptions &opts,
          const SolverBudget &budget, const Schedule &seed, int mii)
{
    SolveOutcome out;
    out.schedule = seed;
    out.lowerBound = mii;

    auto publish = [&] {
        SolverMetrics &m = solverMetrics();
        m.nodes.add(out.stats.nodes);
        m.prunes.add(out.stats.prunes);
        m.refutedIis.add(out.stats.iisRefuted);
        if (out.stats.timedOut)
            m.timeouts.add();
        switch (out.status) {
          case SolveStatus::Proven:          m.proofs.add(); break;
          case SolveStatus::Feasible:        m.feasible.add(); break;
          case SolveStatus::BudgetExhausted: m.exhausted.add(); break;
        }
        return out;
    };

    // A heuristic schedule at MII is already a certificate: MII is a
    // sound lower bound, so nothing below it needs refuting.
    if (seed.ii <= mii) {
        out.status = SolveStatus::Proven;
        out.lowerBound = seed.ii;
        return publish();
    }

    ExactSearch search(ddg, lat, cfg, opts, budget);
    const std::uint64_t maxNodes = std::max<std::uint64_t>(
        budget.maxNodes, 1);
    // Most of the budget proves from MII upward; the remainder is
    // reserved for finding *some* improvement at intermediate IIs
    // when the proof stalls.
    const std::uint64_t proofCap =
        std::max<std::uint64_t>(maxNodes - maxNodes / 8, 1);

    auto finish = [&](SolveStatus status) {
        out.status = status;
        out.stats.nodes = search.nodes();
        out.stats.prunes = search.prunes();
        out.stats.timedOut = search.timedOut();
        return publish();
    };

    int exhaustedAt = -1;
    for (int ii = mii; ii < seed.ii; ++ii) {
        const ExactSearch::LevelResult r =
            search.searchII(ii, proofCap, seed.length);
        if (r == ExactSearch::LevelResult::Solved) {
            out.schedule = search.found();
            out.lowerBound = ii;
            return finish(SolveStatus::Proven);
        }
        if (r == ExactSearch::LevelResult::Infeasible) {
            ++out.stats.iisRefuted;
            out.lowerBound = ii + 1;
            continue;
        }
        exhaustedAt = ii;
        break;
    }
    if (exhaustedAt < 0) {
        // Every II below the seed refuted: the seed is optimal.
        out.lowerBound = seed.ii;
        return finish(SolveStatus::Proven);
    }

    // Improvement pass with the reserved slice: the smallest II the
    // solver can still reach beats the seed even without a proof.
    for (int ii = exhaustedAt + 1;
         ii < seed.ii && !search.timedOut(); ++ii) {
        const ExactSearch::LevelResult r =
            search.searchII(ii, maxNodes, seed.length);
        if (r == ExactSearch::LevelResult::Solved) {
            out.schedule = search.found();
            return finish(SolveStatus::Feasible);
        }
        if (r == ExactSearch::LevelResult::Exhausted)
            break;
    }
    return finish(SolveStatus::BudgetExhausted);
}

} // namespace vliw::opt
