/**
 * @file
 * The optimality-gap report: run the exact solver next to the
 * paper's heuristics over a benchmark x architecture grid and
 * tabulate, per cell, how far each heuristic's II and cycle count
 * sit from the solver's (proven or best-found) answer. This is the
 * quantitative companion to the paper's Figures 4-6: the heuristics
 * are evaluated there against each other; here they are evaluated
 * against a certificate.
 *
 * The report rides entirely on the ordinary sweep machinery — one
 * Session::sweep over {heuristics + optimal arm}, so compile
 * caching, the persistent store, fair scheduling and cancellation
 * all apply unchanged and a gap report at --jobs 8 is byte-equal to
 * --jobs 1.
 */

#ifndef WIVLIW_OPT_GAP_REPORT_HH
#define WIVLIW_OPT_GAP_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "api/session.hh"
#include "support/table.hh"

namespace vliw::opt {

/** What to sweep; defaults mirror the paper's headline grid. */
struct GapReportOptions
{
    /** Benchmarks; empty means every registered workload. */
    std::vector<std::string> benches;
    /** Architectures the gap is measured on. */
    std::vector<std::string> archs{"interleaved", "interleaved-ab"};
    /** Heuristic arms to measure, in report order. */
    std::vector<std::string> heuristics{"base", "ibc", "ipbc"};
    /** The solver arm, possibly budgeted ("optimal:b5000ms"). */
    std::string optimalKey = "optimal";
    /** Worker threads; 0 = the session default. */
    int jobs = 0;
    /** Seeds, profiling caps etc. shared by every cell. */
    ToolchainOptions options;
};

/** One (benchmark, arch, heuristic) comparison row. */
struct GapCell
{
    std::string bench;
    std::string arch;
    /** The heuristic arm this row measures. */
    std::string scheduler;
    /** II summed over the benchmark's kernels. */
    int ii = 0;
    /** Same sum for the solver arm. */
    int iiOptimal = 0;
    int iiGap = 0;
    std::int64_t cycles = 0;
    std::int64_t cyclesOptimal = 0;
    /** (cycles - cyclesOptimal) / cyclesOptimal, in percent. */
    double cycleGapPct = 0.0;
    /** Worst solver outcome over the cell's kernels:
     *  "proven", "feasible" or "budget-exhausted". */
    std::string solver;
    /** Solver II lower bound summed over kernels. */
    int lowerBound = 0;
    /** Search nodes the solver explored, summed over kernels. */
    std::uint64_t solverNodes = 0;
};

/** The whole report, in (bench, arch, heuristic) grid order. */
struct GapReport
{
    std::vector<GapCell> cells;
    /** Compile-cache counters of the underlying sweep. */
    engine::CompileCacheStats cache;

    /** Cells whose solver arm carries a proof. */
    std::size_t provenCount() const;
    /**
     * Soundness gate: true when at least one cell is proven and no
     * heuristic undercuts a proven-optimal II (which would mean
     * the "optimal" certificate is not). CI fails on false.
     */
    bool gatePasses() const;
};

/**
 * Run the gap sweep through @p session. Axis validation errors come
 * back as the sweep's own Status (unknown names, malformed budget
 * keys); a cancelled sweep maps to StatusCode::Cancelled.
 */
api::Result<GapReport> runGapReport(api::Session &session,
                                    const GapReportOptions &opts);

/** Aligned text table over the report's cells. */
TextTable gapTable(const GapReport &report);

/** CSV: header plus one line per cell. */
void writeGapCsv(std::ostream &os, const GapReport &report);

/** JSON: {"gap_report": [...]} with one object per cell. */
void writeGapJson(std::ostream &os, const GapReport &report);

} // namespace vliw::opt

#endif // WIVLIW_OPT_GAP_REPORT_HH
