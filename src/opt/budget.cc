#include "opt/budget.hh"

#include <cctype>
#include <limits>

namespace vliw::opt {

namespace {

constexpr const char *kGrammar =
    "optimal[:b<N>ms][:n<N[eM]>] — b = wall-clock budget in "
    "milliseconds (>= 1), n = node budget as plain digits or "
    "scientific shorthand like n1e7 (>= 1)";

/** Parse the digits at s[pos...); false on overflow or no digit. */
bool
parseDigits(const std::string &s, std::size_t &pos,
            std::uint64_t &out)
{
    constexpr std::uint64_t kMax =
        std::numeric_limits<std::uint64_t>::max();
    bool any = false;
    std::uint64_t v = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
        const std::uint64_t d = std::uint64_t(s[pos] - '0');
        if (v > (kMax - d) / 10)
            return false;
        v = v * 10 + d;
        any = true;
        ++pos;
    }
    if (!any)
        return false;
    out = v;
    return true;
}

} // namespace

const char *
budgetGrammar()
{
    return kGrammar;
}

api::Status
applyBudgetModifier(SolverBudget &budget, const std::string &token,
                    const std::string &key)
{
    auto malformed = [&] {
        return api::Status::invalidArgument(
            "malformed modifier '" + token + "' in scheduler key '" +
                key + "'",
            kGrammar);
    };

    if (token.empty())
        return api::Status::invalidArgument(
            "empty modifier in scheduler key '" + key + "'",
            kGrammar);

    std::size_t pos = 1;
    std::uint64_t value = 0;
    switch (token[0]) {
      case 'b': {
        if (!parseDigits(token, pos, value))
            return malformed();
        if (token.compare(pos, std::string::npos, "ms") != 0)
            return malformed();
        if (value < 1 || value > 86'400'000) // a day is plenty
            return malformed();
        budget.maxMillis = std::uint32_t(value);
        return api::Status{};
      }
      case 'n': {
        if (!parseDigits(token, pos, value))
            return malformed();
        if (pos < token.size()) {
            if (token[pos] != 'e')
                return malformed();
            ++pos;
            std::uint64_t exp = 0;
            if (!parseDigits(token, pos, exp) || pos != token.size())
                return malformed();
            if (exp > 18)
                return malformed();
            for (std::uint64_t i = 0; i < exp; ++i) {
                if (value > std::uint64_t(100'000'000'000'000'000))
                    return malformed();
                value *= 10;
            }
        }
        if (value < 1 ||
            value > std::uint64_t(1'000'000'000'000'000'000))
            return malformed();
        budget.maxNodes = value;
        return api::Status{};
      }
      default:
        return malformed();
    }
}

std::string
canonicalBudgetKey(const SolverBudget &budget,
                   const std::string &base)
{
    std::string key = base;
    if (budget.maxMillis != 0) {
        key += ":b";
        key += std::to_string(budget.maxMillis);
        key += "ms";
    }
    if (budget.maxNodes != SolverBudget::kDefaultNodes) {
        key += ":n";
        key += std::to_string(budget.maxNodes);
    }
    return key;
}

} // namespace vliw::opt
