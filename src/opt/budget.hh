/**
 * @file
 * Deterministic search budgets for the exact modulo scheduler and
 * the `optimal[:b<N>ms][:n<N>]` parametric scheduler-key grammar.
 *
 * The node budget is the deterministic one: the solver counts
 * placement attempts at fixed points of the search, so two runs with
 * the same budget explore the same tree prefix regardless of thread
 * count or machine speed. The millisecond budget is a wall-clock
 * safety net (checked coarsely, alongside the cooperative cancel
 * token); results under an expiring ms budget are machine-dependent,
 * which is why it defaults to off.
 */

#ifndef WIVLIW_OPT_BUDGET_HH
#define WIVLIW_OPT_BUDGET_HH

#include <cstdint>
#include <string>

#include "api/status.hh"

namespace vliw::opt {

/** Search limits for one exact-scheduling run (one loop). */
struct SolverBudget
{
    static constexpr std::uint64_t kDefaultNodes = 1'000'000;

    /** Placement attempts explored before giving up (>= 1). */
    std::uint64_t maxNodes = kDefaultNodes;
    /** Wall-clock cap in milliseconds; 0 disables the clock. */
    std::uint32_t maxMillis = 0;

    friend bool
    operator==(const SolverBudget &a, const SolverBudget &b)
    {
        return a.maxNodes == b.maxNodes && a.maxMillis == b.maxMillis;
    }
};

/** One-line budget grammar, used as Status context for bad keys. */
const char *budgetGrammar();

/**
 * Apply one `:`-separated modifier token of an `optimal` scheduler
 * key to @p budget. Accepts `b<N>ms` (wall-clock budget) and `n<N>`
 * or `n<D>e<E>` (node budget, scientific shorthand). @p key is the
 * full scheduler key, quoted in error messages.
 */
api::Status applyBudgetModifier(SolverBudget &budget,
                                const std::string &token,
                                const std::string &key);

/**
 * Canonical scheduler key for @p budget: @p base alone when
 * everything is at its default, else `base:b<N>ms` / `:n<N>` in
 * that order with plain-digit numbers. Parsing the canonical key
 * reproduces @p budget exactly.
 */
std::string canonicalBudgetKey(const SolverBudget &budget,
                               const std::string &base = "optimal");

} // namespace vliw::opt

#endif // WIVLIW_OPT_BUDGET_HH
