#include "experiment.hh"

#include "support/logging.hh"
#include "workloads/dataset.hh"
#include "workloads/mediabench.hh"

namespace vliw::engine {

const std::vector<std::string> &
archNames()
{
    static const std::vector<std::string> names = {
        "interleaved", "interleaved-ab", "unified1", "unified5",
        "multivliw"};
    return names;
}

std::optional<ArchSpec>
findArch(const std::string &name)
{
    if (name == "interleaved")
        return ArchSpec{name, MachineConfig::paperInterleaved()};
    if (name == "interleaved-ab")
        return ArchSpec{name, MachineConfig::paperInterleavedAb()};
    if (name == "unified1")
        return ArchSpec{name, MachineConfig::paperUnified(1)};
    if (name == "unified5")
        return ArchSpec{name, MachineConfig::paperUnified(5)};
    if (name == "multivliw")
        return ArchSpec{name, MachineConfig::paperMultiVliw()};
    return std::nullopt;
}

ArchSpec
makeArch(const std::string &name)
{
    auto arch = findArch(name);
    if (!arch)
        vliw_panic("unknown architecture ", name);
    return *arch;
}

std::optional<Heuristic>
findHeuristic(const std::string &name)
{
    if (name == "base")
        return Heuristic::Base;
    if (name == "ibc")
        return Heuristic::Ibc;
    if (name == "ipbc")
        return Heuristic::Ipbc;
    return std::nullopt;
}

std::optional<UnrollPolicy>
findUnrollPolicy(const std::string &name)
{
    if (name == "none")
        return UnrollPolicy::None;
    if (name == "xN")
        return UnrollPolicy::TimesN;
    if (name == "ouf")
        return UnrollPolicy::Ouf;
    if (name == "selective")
        return UnrollPolicy::Selective;
    return std::nullopt;
}

std::string
ExperimentSpec::label() const
{
    std::string out = bench + "/" + arch.name + "/" +
        heuristicName(opts.heuristic) + "/" +
        unrollPolicyName(opts.unroll);
    if (!opts.varAlignment)
        out += "/noalign";
    if (!opts.memChains)
        out += "/nochains";
    if (opts.loopVersioning)
        out += "/versioned";
    return out;
}

std::size_t
ExperimentGrid::size() const
{
    const std::size_t nb =
        benches.empty() ? mediabenchNames().size() : benches.size();
    const std::size_t na =
        archs.empty() ? archNames().size() : archs.size();
    return nb * na * heuristics.size() * unrolls.size() *
        alignment.size() * chains.size() * versioning.size();
}

std::vector<ExperimentSpec>
ExperimentGrid::expand() const
{
    const std::vector<std::string> &bench_axis =
        benches.empty() ? mediabenchNames() : benches;
    const std::vector<std::string> &arch_axis =
        archs.empty() ? archNames() : archs;

    std::vector<ArchSpec> arch_specs;
    arch_specs.reserve(arch_axis.size());
    for (const std::string &name : arch_axis)
        arch_specs.push_back(makeArch(name));

    vliw_assert(datasets >= 1, "grid wants at least one data set");
    std::vector<std::uint64_t> seeds;
    if (datasets > 1) {
        seeds.reserve(std::size_t(datasets));
        for (int d = 0; d < datasets; ++d)
            seeds.push_back(datasetSeed(base.execSeed, d));
    }

    std::vector<ExperimentSpec> out;
    out.reserve(size());
    for (const std::string &bench : bench_axis) {
        for (const ArchSpec &arch : arch_specs) {
            for (Heuristic h : heuristics) {
                for (UnrollPolicy u : unrolls) {
                    for (bool align : alignment) {
                        for (bool chain : chains) {
                            for (bool ver : versioning) {
                                ExperimentSpec spec;
                                spec.bench = bench;
                                spec.arch = arch;
                                spec.opts = base;
                                spec.opts.heuristic = h;
                                spec.opts.unroll = u;
                                spec.opts.varAlignment = align;
                                spec.opts.memChains = chain;
                                spec.opts.loopVersioning = ver;
                                spec.execSeeds = seeds;
                                out.push_back(std::move(spec));
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace vliw::engine
