#include "experiment.hh"

#include "support/logging.hh"
#include "workloads/dataset.hh"

namespace vliw::engine {

const std::vector<std::string> &
archNames()
{
    return api::builtinRegistries().archs.names();
}

std::optional<ArchSpec>
findArch(const std::string &name)
{
    auto cfg = api::builtinRegistries().archs.resolve(name);
    if (!cfg.ok())
        return std::nullopt;
    return ArchSpec{name, cfg.take()};
}

ArchSpec
makeArch(const std::string &name)
{
    auto arch = findArch(name);
    if (!arch)
        vliw_panic("unknown architecture ", name);
    return *arch;
}

std::optional<Heuristic>
findHeuristic(const std::string &name)
{
    auto h = api::builtinRegistries().schedulers.resolve(name);
    if (!h.ok())
        return std::nullopt;
    return h.value().heuristic;
}

std::optional<UnrollPolicy>
findUnrollPolicy(const std::string &name)
{
    auto u = api::builtinRegistries().unrolls.resolve(name);
    if (!u.ok())
        return std::nullopt;
    return u.value();
}

std::string
schedulerLabel(const ToolchainOptions &opts)
{
    if (opts.optimalSolver)
        return opt::canonicalBudgetKey(opts.solverBudget);
    return heuristicName(opts.heuristic);
}

std::string
ExperimentSpec::label() const
{
    std::string out = bench + "/" + arch.name + "/" +
        schedulerLabel(opts) + "/" +
        unrollPolicyName(opts.unroll);
    if (!opts.varAlignment)
        out += "/noalign";
    if (!opts.memChains)
        out += "/nochains";
    if (opts.loopVersioning)
        out += "/versioned";
    return out;
}

std::size_t
ExperimentGrid::size() const
{
    const api::Registries &reg =
        registries ? *registries : api::builtinRegistries();
    const std::size_t nb = benches.empty()
        ? reg.workloads.size() : benches.size();
    const std::size_t na =
        archs.empty() ? reg.archs.size() : archs.size();
    return nb * na * heuristics.size() * unrolls.size() *
        alignment.size() * chains.size() * versioning.size();
}

std::vector<ExperimentSpec>
ExperimentGrid::expand() const
{
    const api::Registries &reg =
        registries ? *registries : api::builtinRegistries();

    const std::vector<std::string> &bench_axis =
        benches.empty() ? reg.workloads.names() : benches;
    const std::vector<std::string> &arch_axis =
        archs.empty() ? reg.archs.names() : archs;

    // Resolve every axis through the registries up front; a name
    // that fails here is library misuse (the façade pre-validates).
    auto must = [](auto result, const char *axis) {
        if (!result.ok()) {
            vliw_panic("grid ", axis, " axis: ",
                       result.status().toString());
        }
        return result.take();
    };

    std::vector<ArchSpec> arch_specs;
    arch_specs.reserve(arch_axis.size());
    for (const std::string &name : arch_axis) {
        arch_specs.push_back(
            ArchSpec{name, must(reg.archs.resolve(name), "arch")});
    }
    std::vector<api::SchedulerChoice> heuristic_axis;
    heuristic_axis.reserve(heuristics.size());
    for (const std::string &name : heuristics) {
        heuristic_axis.push_back(
            must(reg.schedulers.resolve(name), "heuristic"));
    }
    std::vector<UnrollPolicy> unroll_axis;
    unroll_axis.reserve(unrolls.size());
    for (const std::string &name : unrolls) {
        unroll_axis.push_back(
            must(reg.unrolls.resolve(name), "unroll"));
    }
    std::vector<std::shared_ptr<const BenchmarkSpec>> workloads;
    workloads.reserve(bench_axis.size());
    for (const std::string &name : bench_axis) {
        workloads.push_back(
            must(reg.workloads.resolve(name), "bench"));
    }

    vliw_assert(datasets >= 1, "grid wants at least one data set");
    std::vector<std::uint64_t> seeds;
    if (datasets > 1) {
        seeds.reserve(std::size_t(datasets));
        for (int d = 0; d < datasets; ++d)
            seeds.push_back(datasetSeed(base.execSeed, d));
    }

    std::vector<ExperimentSpec> out;
    out.reserve(size());
    for (std::size_t bi = 0; bi < bench_axis.size(); ++bi) {
        for (const ArchSpec &arch : arch_specs) {
            for (const api::SchedulerChoice &h : heuristic_axis) {
                for (UnrollPolicy u : unroll_axis) {
                    for (bool align : alignment) {
                        for (bool chain : chains) {
                            for (bool ver : versioning) {
                                ExperimentSpec spec;
                                spec.bench = bench_axis[bi];
                                spec.arch = arch;
                                spec.opts = base;
                                spec.opts.heuristic = h.heuristic;
                                spec.opts.optimalSolver = h.optimal;
                                spec.opts.solverBudget = h.budget;
                                spec.opts.unroll = u;
                                spec.opts.varAlignment = align;
                                spec.opts.memChains = chain;
                                spec.opts.loopVersioning = ver;
                                spec.execSeeds = seeds;
                                spec.workload = workloads[bi];
                                out.push_back(std::move(spec));
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace vliw::engine
