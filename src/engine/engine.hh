/**
 * @file
 * The batch experiment engine: expands an ExperimentGrid (or takes
 * a pre-built job list), runs every job on a worker pool, and
 * memoizes compilation through the CompileCache.
 *
 * Determinism contract: results are returned in grid order, every
 * job derives all randomness from its own per-experiment seeds, and
 * each job writes only to its own slot — so a `jobs = N` run is
 * bit-identical to a `jobs = 1` run of the same grid, and to the
 * serial Toolchain::runBenchmark() loop the bench harnesses used
 * before this engine existed.
 */

#ifndef WIVLIW_ENGINE_ENGINE_HH
#define WIVLIW_ENGINE_ENGINE_HH

#include <optional>
#include <vector>

#include "engine/compile_cache.hh"
#include "engine/experiment.hh"

namespace vliw::engine {

/** Execution knobs. */
struct EngineOptions
{
    /** Concurrent workers; 0 picks hardware concurrency. */
    int jobs = 1;
    /** Share compiles between arch/AB variants (see compileKey). */
    bool compileCache = true;
};

/** Runs experiment batches; reusable across batches. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(const EngineOptions &opts = {});

    /**
     * Run every spec; results come back in spec order. A job that
     * fails (CompileError, bad custom workload) records its error
     * on its own result slot and the rest of the batch still runs.
     * @p jobsOverride, when given, sizes this batch's worker pool
     * instead of options().jobs (the compile cache is shared
     * either way).
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs,
        std::optional<int> jobsOverride = std::nullopt);

    /** Expand @p grid and run it. */
    std::vector<ExperimentResult>
    run(const ExperimentGrid &grid,
        std::optional<int> jobsOverride = std::nullopt);

    /** Cache accounting accumulated over every run() so far. */
    CompileCacheStats cacheStats() const { return cache_.stats(); }

    /** The memo run() compiles through (compile-only callers). */
    CompileCache &cache() { return cache_; }

    const EngineOptions &options() const { return opts_; }

  private:
    EngineOptions opts_;
    CompileCache cache_;
};

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_ENGINE_HH
