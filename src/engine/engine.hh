/**
 * @file
 * The batch experiment engine: expands an ExperimentGrid (or takes
 * a pre-built job list), runs every job on a worker pool, and
 * memoizes compilation through the CompileCache.
 *
 * Determinism contract: results are returned in grid order, every
 * job derives all randomness from its own per-experiment seeds, and
 * each job writes only to its own slot — so a `jobs = N` run is
 * bit-identical to a `jobs = 1` run of the same grid, and to the
 * serial Toolchain::runBenchmark() loop the bench harnesses used
 * before this engine existed. runExperiment() is the shared
 * single-cell kernel both this batch path and the async façade
 * (api::Session::submit) execute, so the contract extends to any
 * interleaving of asynchronous jobs.
 */

#ifndef WIVLIW_ENGINE_ENGINE_HH
#define WIVLIW_ENGINE_ENGINE_HH

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include "engine/compile_cache.hh"
#include "engine/experiment.hh"

namespace vliw::engine {

/** Execution knobs. */
struct EngineOptions
{
    /** Concurrent workers; 0 picks hardware concurrency. */
    int jobs = 1;
    /** Share compiles between arch/AB variants (see compileKey). */
    bool compileCache = true;
    /** Compile-cache entry bound; 0 = unbounded (see CompileCache). */
    std::size_t cacheCapacity = 0;
    /**
     * Optional persistent artifact store backing the in-memory
     * cache across processes (see PersistentCompileStore); only
     * consulted when compileCache is on.
     */
    std::shared_ptr<PersistentCompileStore> store;
};

/**
 * Observation and cancellation hooks for one runExperiment() call.
 * All members are optional; a null hooks pointer means "run to
 * completion silently", which is the classic batch behaviour.
 */
struct RunHooks
{
    /**
     * Cooperative cancellation flag: checked before the compile
     * phase, between compile and simulate, and (via
     * ToolchainOptions::cancel) inside the scheduler's II-retry
     * loop. A cell that observes it set comes back with
     * `cancelled` set and no datasetRuns; a compile that had
     * already finished stays in the cache. When null, the spec's
     * own ToolchainOptions::cancel (if any) is the token.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Called after the compile phase succeeds, before simulation
     * starts; @p result carries the spec and compileMs measured so
     * far. Runs on the worker thread executing the cell.
     */
    std::function<void(const ExperimentResult &result)> compiled;
};

/**
 * Run one experiment cell: resolve the workload, compile (through
 * @p cache when non-null, locally otherwise) and simulate every
 * data set. Never throws: failures land on the result's error
 * slot, cancellation on its `cancelled` flag. This is the one
 * place cell semantics live; the batch engine and the async façade
 * both call it.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec,
                               CompileCache *cache,
                               const RunHooks *hooks = nullptr);

/** Runs experiment batches; reusable across batches. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(const EngineOptions &opts = {});

    /**
     * Run every spec; results come back in spec order. A job that
     * fails (CompileError, bad custom workload) records its error
     * on its own result slot and the rest of the batch still runs.
     * @p jobsOverride, when given, sizes this batch's worker pool
     * instead of options().jobs (the compile cache is shared
     * either way).
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs,
        std::optional<int> jobsOverride = std::nullopt);

    /** Expand @p grid and run it. */
    std::vector<ExperimentResult>
    run(const ExperimentGrid &grid,
        std::optional<int> jobsOverride = std::nullopt);

    /** Cache accounting accumulated over every run() so far. */
    CompileCacheStats cacheStats() const { return cache_.stats(); }

    /** The memo run() compiles through (compile-only callers). */
    CompileCache &cache() { return cache_; }

    const EngineOptions &options() const { return opts_; }

  private:
    EngineOptions opts_;
    CompileCache cache_;
};

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_ENGINE_HH
