#include "compile_cache.hh"

#include <sstream>

namespace vliw::engine {

std::string
compileKey(const MachineConfig &cfg, const ToolchainOptions &opts,
           const std::string &bench)
{
    std::ostringstream key;
    key << bench
        // Core geometry the scheduler packs into.
        << "|c" << cfg.numClusters
        << "u" << cfg.intUnitsPerCluster
        << "," << cfg.fpUnitsPerCluster
        << "," << cfg.memUnitsPerCluster
        << "r" << cfg.regsPerCluster
        // Inter-cluster copies are scheduled operations.
        << "|b" << cfg.regBuses << "," << cfg.regBusOccupancy
        << "," << cfg.regBusLatency
        // Cache organisation picks the latency scheme; geometry
        // drives the profiling pass and the data-set layout.
        << "|o" << int(cfg.cacheOrg)
        << "$" << cfg.cacheBytes << "," << cfg.blockBytes
        << "," << cfg.cacheWays << "," << cfg.interleaveBytes
        // Every latency class the assigner can hand out.
        << "|l" << cfg.latLocalHit << "," << cfg.latRemoteHit
        << "," << cfg.latLocalMiss << "," << cfg.latRemoteMiss
        << "," << cfg.latUnified << "," << cfg.latCoherentHit
        << "," << cfg.latCacheToCache << "," << cfg.latNextLevel
        // Toolchain options seen by the compiler, keyed by the
        // same canonical names the registries and reports use.
        << "|h" << heuristicName(opts.heuristic)
        << "u" << unrollPolicyName(opts.unroll)
        << (opts.varAlignment ? "a" : "-")
        << (opts.memChains ? "m" : "-")
        << (opts.loopVersioning ? "v" : "-")
        << "|s" << std::hex << opts.profileSeed << std::dec
        << "|p" << opts.profile.maxIterations
        << "|t" << opts.maxIiTries;
    // Attraction Buffers enter the compiler's view only through
    // the hint pass; key them only when that pass runs so plain
    // AB-vs-no-AB arms still share compiles.
    if (opts.abHints) {
        key << "|ab" << (cfg.attractionBuffers ? 1 : 0)
            << "," << opts.abHintBudget;
    }
    return key.str();
}

CompileCache::Entry
CompileCache::compile(const MachineConfig &cfg,
                      const ToolchainOptions &opts,
                      const BenchmarkSpec &bench)
{
    const std::string key = compileKey(cfg, opts, bench.name);

    std::shared_future<Entry> future;
    std::promise<Entry> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            stats_.hits += 1;
            stats_.hitsByBench[bench.name] += 1;
            future = it->second;
        } else {
            stats_.misses += 1;
            stats_.missesByBench[bench.name] += 1;
            future = promise.get_future().share();
            entries_.emplace(key, future);
            owner = true;
        }
    }

    if (owner) {
        // A failed compile (e.g. CompileError) must reach every
        // requester blocked on this key, not leave them waiting on
        // a promise that is never satisfied.
        try {
            const Toolchain chain(cfg, opts);
            promise.set_value(
                std::make_shared<const CompiledBenchmark>(
                    chain.compileBenchmark(bench)));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace vliw::engine
