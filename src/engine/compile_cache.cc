#include "compile_cache.hh"

#include "support/metrics.hh"

#include <chrono>
#include <sstream>

namespace vliw::engine {

namespace {

/** Cache/store traffic mirrored into the scrapeable registry. */
struct CacheMetrics
{
    metrics::Counter &hits;
    metrics::Counter &misses;
    metrics::Counter &evictions;
    metrics::Counter &storeHits;
    metrics::Counter &storeMisses;
    metrics::Counter &stores;
};

CacheMetrics &
cacheMetrics()
{
    metrics::Registry &reg = metrics::registry();
    static CacheMetrics m{
        reg.counter("wivliw_compile_cache_hits_total"),
        reg.counter("wivliw_compile_cache_misses_total"),
        reg.counter("wivliw_compile_cache_evictions_total"),
        reg.counter("wivliw_compile_store_hits_total"),
        reg.counter("wivliw_compile_store_misses_total"),
        reg.counter("wivliw_compile_store_writes_total"),
    };
    return m;
}

} // namespace

std::string
compileKey(const MachineConfig &cfg, const ToolchainOptions &opts,
           const std::string &bench)
{
    std::ostringstream key;
    key << bench
        // Core geometry the scheduler packs into.
        << "|c" << cfg.numClusters
        << "u" << cfg.intUnitsPerCluster
        << "," << cfg.fpUnitsPerCluster
        << "," << cfg.memUnitsPerCluster
        << "r" << cfg.regsPerCluster
        // Inter-cluster copies are scheduled operations.
        << "|b" << cfg.regBuses << "," << cfg.regBusOccupancy
        << "," << cfg.regBusLatency
        // Cache organisation picks the latency scheme; geometry
        // drives the profiling pass and the data-set layout.
        << "|o" << int(cfg.cacheOrg)
        << "$" << cfg.cacheBytes << "," << cfg.blockBytes
        << "," << cfg.cacheWays << "," << cfg.interleaveBytes
        // Every latency class the assigner can hand out.
        << "|l" << cfg.latLocalHit << "," << cfg.latRemoteHit
        << "," << cfg.latLocalMiss << "," << cfg.latRemoteMiss
        << "," << cfg.latUnified << "," << cfg.latCoherentHit
        << "," << cfg.latCacheToCache << "," << cfg.latNextLevel
        // Toolchain options seen by the compiler, keyed by the
        // same canonical names the registries and reports use.
        // (The cooperative cancel token is deliberately absent:
        // it never changes the artifact.)
        << "|h" << heuristicName(opts.heuristic)
        << "u" << unrollPolicyName(opts.unroll)
        << (opts.varAlignment ? "a" : "-")
        << (opts.memChains ? "m" : "-")
        << (opts.loopVersioning ? "v" : "-")
        << "|s" << std::hex << opts.profileSeed << std::dec
        << "|p" << opts.profile.maxIterations
        << "|t" << opts.maxIiTries;
    // Attraction Buffers enter the compiler's view only through
    // the hint pass; key them only when that pass runs so plain
    // AB-vs-no-AB arms still share compiles.
    if (opts.abHints) {
        key << "|ab" << (cfg.attractionBuffers ? 1 : 0)
            << "," << opts.abHintBudget;
    }
    // The exact solver changes the artifact; the budget bounds how
    // far its proof gets, so it is compile-relevant too. Keyed only
    // when the solver runs: heuristic keys — and every store
    // published before the solver existed — stay byte-stable.
    if (opts.optimalSolver) {
        key << "|x" << opts.solverBudget.maxNodes
            << "," << opts.solverBudget.maxMillis;
    }
    return key.str();
}

CompileCache::Entry
CompileCache::compile(const MachineConfig &cfg,
                      const ToolchainOptions &opts,
                      const BenchmarkSpec &bench)
{
    // Ingested workloads carry a content fingerprint: two
    // same-named text kernels with different bodies must not share
    // artifacts (the persistent store outlives a registration).
    // Builtins have no fingerprint, keeping their keys — and any
    // store published before ingestion existed — unchanged.
    const std::string key = compileKey(
        cfg, opts,
        bench.fingerprint.empty()
            ? bench.name
            : bench.name + "@" + bench.fingerprint);

    std::shared_future<Entry> future;
    std::promise<Entry> promise;
    bool owner = false;
    std::uint64_t myGen = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            cacheMetrics().hits.add();
            hitsByBench_[bench.name] += 1;
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            future = it->second.future;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            cacheMetrics().misses.add();
            missesByBench_[bench.name] += 1;
            future = promise.get_future().share();
            myGen = ++nextGen_;
            lru_.push_front(key);
            entries_.emplace(key, Slot{future, lru_.begin(), myGen});
            enforceCapacityLocked(key);
            owner = true;
        }
    }

    if (owner) {
        // A failed compile (CompileError, CancelledError) must
        // reach every requester blocked on this key, not leave
        // them waiting on a promise that is never satisfied — and
        // must vacate the slot, so a later request (e.g. an
        // uncancelled job that shared a cancelled owner's compile)
        // retries fresh instead of replaying the failure. The
        // erase happens BEFORE the exception is published (no
        // window where a ready-failed slot can be looked up and
        // spun on) and only under this owner's generation (never
        // a successor's re-compile after an eviction).
        try {
            Entry compiled;
            bool fromStore = false;
            if (store_) {
                compiled = store_->load(key);
                if (compiled) {
                    fromStore = true;
                    storeHits_.fetch_add(
                        1, std::memory_order_relaxed);
                    cacheMetrics().storeHits.add();
                } else {
                    storeMisses_.fetch_add(
                        1, std::memory_order_relaxed);
                    cacheMetrics().storeMisses.add();
                }
            }
            if (!compiled) {
                const Toolchain chain(cfg, opts);
                compiled = std::make_shared<const CompiledBenchmark>(
                    chain.compileBenchmark(bench));
            }
            // Publish to waiters first — persisting a fresh
            // compile is best-effort disk IO nobody should block
            // on for correctness.
            promise.set_value(compiled);
            if (store_ && !fromStore) {
                store_->store(key, *compiled);
                stores_.fetch_add(1, std::memory_order_relaxed);
                cacheMetrics().stores.add();
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                auto it = entries_.find(key);
                if (it != entries_.end() &&
                    it->second.gen == myGen) {
                    lru_.erase(it->second.lruIt);
                    entries_.erase(it);
                }
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
CompileCache::enforceCapacityLocked(const std::string &keep)
{
    if (capacity_ == 0)
        return;
    auto victim = lru_.end();
    while (entries_.size() > capacity_ && victim != lru_.begin()) {
        --victim;
        if (*victim == keep)
            continue;
        auto it = entries_.find(*victim);
        // Only evict settled entries; an in-flight compile has
        // waiters parked on its future.
        if (it->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            continue;
        }
        entries_.erase(it);
        victim = lru_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().evictions.add();
    }
}

CompileCacheStats
CompileCache::stats() const
{
    CompileCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.storeHits = storeHits_.load(std::memory_order_relaxed);
    out.storeMisses = storeMisses_.load(std::memory_order_relaxed);
    out.stores = stores_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    out.hitsByBench = hitsByBench_;
    out.missesByBench = missesByBench_;
    return out;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace vliw::engine
