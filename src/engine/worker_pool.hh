/**
 * @file
 * Fixed-size worker pool over a mutex/condvar job queue.
 *
 * The pool is deliberately minimal: jobs are opaque closures, the
 * queue is FIFO, and wait() gives a full barrier. Determinism of
 * the experiment engine does not come from the pool (thread
 * interleaving is arbitrary) but from the jobs themselves: every
 * experiment seeds its own Rng streams and writes to its own
 * result slot, so execution order cannot influence any value.
 */

#ifndef WIVLIW_ENGINE_WORKER_POOL_HH
#define WIVLIW_ENGINE_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vliw::engine {

/** Fixed-size thread pool; destruction joins after draining. */
class WorkerPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware
     *        concurrency (at least 1). With 1 worker the pool
     *        degenerates to serial FIFO execution, which is what
     *        the determinism tests compare against.
     */
    explicit WorkerPool(int threads = 0);

    /** Drains the queue, then joins every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue one job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    int threadCount() const { return int(workers_.size()); }

  private:
    void workerMain();

    std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    bool shutdown_ = false;
};

/**
 * Run fn(0) ... fn(n-1) on @p pool and wait for all of them.
 * Indices let each call target its own output slot, which is the
 * pattern every deterministic parallel stage in the engine uses.
 */
void parallelFor(WorkerPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_WORKER_POOL_HH
