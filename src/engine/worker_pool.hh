/**
 * @file
 * Fixed-size worker pool over a mutex/condvar job queue.
 *
 * The queue is priority-aware: a job submitted with a higher
 * priority runs before lower-priority work that is still queued,
 * and jobs of equal priority keep FIFO order (a stable sort by
 * submission sequence). wait() gives a full barrier. Determinism of
 * the experiment engine does not come from the pool (thread
 * interleaving is arbitrary) but from the jobs themselves: every
 * experiment seeds its own Rng streams and writes to its own
 * result slot, so execution order cannot influence any value —
 * priorities reorder only *when* work happens, never what it
 * computes.
 *
 * Jobs should not throw; a job that does is caught at the pool
 * boundary instead of reaching std::terminate, and the first
 * escaped exception is kept for the owner to collect with
 * takeFirstError(). (The async façade additionally catches at its
 * own cell boundary and surfaces escapes as an Internal status;
 * this pool-level capture is the backstop for direct pool users
 * like parallelFor.)
 */

#ifndef WIVLIW_ENGINE_WORKER_POOL_HH
#define WIVLIW_ENGINE_WORKER_POOL_HH

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vliw::engine {

/** Fixed-size thread pool; destruction joins after draining. */
class WorkerPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware
     *        concurrency (at least 1). With 1 worker the pool
     *        degenerates to serial priority-then-FIFO execution,
     *        which is what the determinism tests compare against.
     */
    explicit WorkerPool(int threads = 0);

    /** Drains the queue, then joins every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue one job. Higher @p priority runs first; equal
     * priorities keep submission order. Jobs should not throw —
     * an exception that escapes one is captured (see
     * takeFirstError()) and the worker carries on.
     */
    void submit(std::function<void()> job, int priority = 0);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Grow the pool to at least @p threads workers (never
     * shrinks). Lets a long-lived shared pool honour a later
     * request's larger concurrency without restarting in-flight
     * work.
     */
    void ensureThreads(int threads);

    /**
     * The first exception that escaped a job since the last call,
     * or nullptr. Collecting it clears the slot.
     */
    std::exception_ptr takeFirstError();

    int threadCount() const;

  private:
    /** A queued closure with its scheduling key. */
    struct QueuedJob
    {
        int priority = 0;
        std::uint64_t seq = 0;
        std::function<void()> fn;
    };
    /** Max-heap: highest priority first, FIFO within a priority. */
    struct JobOrder
    {
        bool
        operator()(const QueuedJob &a, const QueuedJob &b) const
        {
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.seq > b.seq;
        }
    };

    void workerMain();

    mutable std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::priority_queue<QueuedJob, std::vector<QueuedJob>, JobOrder>
        queue_;
    std::vector<std::thread> workers_;
    std::uint64_t nextSeq_ = 0;
    std::size_t inFlight_ = 0;
    std::exception_ptr firstError_;
    bool shutdown_ = false;
};

/**
 * Run fn(0) ... fn(n-1) on @p pool and wait for all of them.
 * Indices let each call target its own output slot, which is the
 * pattern every deterministic parallel stage in the engine uses.
 */
void parallelFor(WorkerPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_WORKER_POOL_HH
