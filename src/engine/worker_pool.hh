/**
 * @file
 * Fixed-size worker pool over a mutex/condvar job queue.
 *
 * The queue is priority-aware and client-fair. Scheduling order is:
 *
 *   1. Higher priority bands drain before lower ones (unchanged).
 *   2. Within a band, dispatch is deficit-round-robin across client
 *      keys with a quantum of one job: each client with queued work
 *      holds a slot in an arrival-ordered ring, and every dequeue
 *      takes the front of the current slot's FIFO then advances the
 *      ring. A greedy client's backlog therefore interleaves with
 *      other clients' work instead of starving it.
 *   3. Jobs of one client within one band keep FIFO order.
 *
 * With a single client key (the default) the ring has one slot and
 * the pool degenerates to exactly the old priority-then-FIFO order,
 * which is what the engine determinism tests compare against. The
 * schedule is deterministic given arrival order: ring membership
 * and rotation depend only on the submission sequence, never on
 * which worker thread dequeues.
 *
 * wait() gives a full barrier. Determinism of the experiment engine
 * does not come from the pool (thread interleaving is arbitrary)
 * but from the jobs themselves: every experiment seeds its own Rng
 * streams and writes to its own result slot, so execution order
 * cannot influence any value — priorities and fairness reorder only
 * *when* work happens, never what it computes.
 *
 * Jobs should not throw; a job that does is caught at the pool
 * boundary instead of reaching std::terminate, and the first
 * escaped exception is kept for the owner to collect with
 * takeFirstError(). (The async façade additionally catches at its
 * own cell boundary and surfaces escapes as an Internal status;
 * this pool-level capture is the backstop for direct pool users
 * like parallelFor.)
 *
 * The pool feeds the process metrics registry:
 * wivliw_pool_queue_depth (gauge), wivliw_pool_jobs_total, and
 * wivliw_pool_wait_us (submit-to-dispatch latency histogram).
 */

#ifndef WIVLIW_ENGINE_WORKER_POOL_HH
#define WIVLIW_ENGINE_WORKER_POOL_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace vliw::engine {

/** Fixed-size thread pool; destruction joins after draining. */
class WorkerPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware
     *        concurrency (at least 1). With 1 worker the pool
     *        degenerates to serial priority-then-fair-FIFO
     *        execution, which is what the determinism tests
     *        compare against.
     */
    explicit WorkerPool(int threads = 0);

    /** Drains the queue, then joins every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue one job. Higher @p priority runs first; within a
     * priority, clients round-robin and one client's jobs keep
     * submission order. @p client groups jobs for fairness — all
     * default-client work behaves exactly like the classic single
     * FIFO. Jobs should not throw — an exception that escapes one
     * is captured (see takeFirstError()) and the worker carries
     * on.
     */
    void submit(std::function<void()> job, int priority = 0,
                std::uint64_t client = 0);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Grow the pool to at least @p threads workers (never
     * shrinks). Lets a long-lived shared pool honour a later
     * request's larger concurrency without restarting in-flight
     * work.
     */
    void ensureThreads(int threads);

    /**
     * The first exception that escaped a job since the last call,
     * or nullptr. Collecting it clears the slot.
     */
    std::exception_ptr takeFirstError();

    int threadCount() const;

    /** Jobs queued but not yet dispatched (diagnostic). */
    std::size_t queueDepth() const;

  private:
    /** A queued closure with its per-client FIFO key. */
    struct QueuedJob
    {
        std::uint64_t seq = 0;
        std::chrono::steady_clock::time_point enqueuedAt;
        std::function<void()> fn;
    };

    /**
     * One priority level: per-client FIFOs plus the round-robin
     * ring of clients that currently have queued work, in the
     * order they (re)gained it.
     */
    struct Band
    {
        std::map<std::uint64_t, std::deque<QueuedJob>> perClient;
        std::vector<std::uint64_t> ring;
        std::size_t rrIndex = 0;
    };

    void workerMain();
    /** Pop the next job per the band/ring policy; queue not empty. */
    QueuedJob popLocked();

    mutable std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    /** Highest priority first. */
    std::map<int, Band, std::greater<int>> bands_;
    std::size_t queued_ = 0;
    std::vector<std::thread> workers_;
    std::uint64_t nextSeq_ = 0;
    std::size_t inFlight_ = 0;
    std::exception_ptr firstError_;
    bool shutdown_ = false;
};

/**
 * Run fn(0) ... fn(n-1) on @p pool and wait for all of them.
 * Indices let each call target its own output slot, which is the
 * pattern every deterministic parallel stage in the engine uses.
 */
void parallelFor(WorkerPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_WORKER_POOL_HH
