#include "worker_pool.hh"

#include "support/metrics.hh"

#include <algorithm>

namespace vliw::engine {

namespace {

struct PoolMetrics
{
    metrics::Gauge &queueDepth;
    metrics::Counter &jobs;
    metrics::Histogram &waitUs;
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m{
        metrics::registry().gauge("wivliw_pool_queue_depth"),
        metrics::registry().counter("wivliw_pool_jobs_total"),
        metrics::registry().histogram("wivliw_pool_wait_us"),
    };
    return m;
}

} // namespace

WorkerPool::WorkerPool(int threads)
{
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(std::size_t(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job, int priority,
                   std::uint64_t client)
{
    PoolMetrics &pm = poolMetrics();
    {
        std::lock_guard<std::mutex> lock(mu_);
        Band &band = bands_[priority];
        std::deque<QueuedJob> &fifo = band.perClient[client];
        if (fifo.empty()) {
            // Client (re)joins the rotation at the back, so a
            // newly-active client waits at most one full ring
            // revolution — deterministic from arrival order.
            band.ring.push_back(client);
        }
        fifo.push_back(QueuedJob{nextSeq_++,
                                 std::chrono::steady_clock::now(),
                                 std::move(job)});
        ++queued_;
    }
    pm.queueDepth.add();
    pm.jobs.add();
    workAvailable_.notify_one();
}

WorkerPool::QueuedJob
WorkerPool::popLocked()
{
    // First non-empty band wins (map is ordered highest-first).
    auto bandIt = bands_.begin();
    while (bandIt->second.ring.empty())
        ++bandIt;
    Band &band = bandIt->second;
    if (band.rrIndex >= band.ring.size())
        band.rrIndex = 0;
    const std::uint64_t client = band.ring[band.rrIndex];
    std::deque<QueuedJob> &fifo = band.perClient[client];
    QueuedJob job = std::move(fifo.front());
    fifo.pop_front();
    if (fifo.empty()) {
        // Drop the client from the rotation; the next slot slides
        // into rrIndex so no advance is needed.
        band.perClient.erase(client);
        band.ring.erase(band.ring.begin() +
                        std::ptrdiff_t(band.rrIndex));
        if (band.rrIndex >= band.ring.size())
            band.rrIndex = 0;
        if (band.ring.empty())
            bands_.erase(bandIt);
    } else {
        band.rrIndex = (band.rrIndex + 1) % band.ring.size();
    }
    --queued_;
    return job;
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock,
                  [this] { return queued_ == 0 && inFlight_ == 0; });
}

void
WorkerPool::ensureThreads(int threads)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (int(workers_.size()) < threads)
        workers_.emplace_back([this] { workerMain(); });
}

std::exception_ptr
WorkerPool::takeFirstError()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    return err;
}

int
WorkerPool::threadCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return int(workers_.size());
}

std::size_t
WorkerPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queued_;
}

void
WorkerPool::workerMain()
{
    PoolMetrics &pm = poolMetrics();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return shutdown_ || queued_ != 0; });
        if (queued_ == 0)
            return;     // shutdown with a drained queue
        QueuedJob job = popLocked();
        ++inFlight_;
        lock.unlock();
        pm.queueDepth.sub();
        pm.waitUs.observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - job.enqueuedAt)
                .count());
        // The pool boundary is noexcept territory: a job that
        // throws must not std::terminate the process or wedge the
        // barrier. Keep the first escape for takeFirstError().
        std::exception_ptr escaped;
        try {
            job.fn();
        } catch (...) {
            escaped = std::current_exception();
        }
        lock.lock();
        if (escaped && !firstError_)
            firstError_ = escaped;
        --inFlight_;
        if (queued_ == 0 && inFlight_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(WorkerPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([i, &fn] { fn(i); });
    pool.wait();
}

} // namespace vliw::engine
