#include "worker_pool.hh"

#include <algorithm>

namespace vliw::engine {

WorkerPool::WorkerPool(int threads)
{
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(std::size_t(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job, int priority)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push(QueuedJob{priority, nextSeq_++, std::move(job)});
    }
    workAvailable_.notify_one();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

void
WorkerPool::ensureThreads(int threads)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (int(workers_.size()) < threads)
        workers_.emplace_back([this] { workerMain(); });
}

std::exception_ptr
WorkerPool::takeFirstError()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    return err;
}

int
WorkerPool::threadCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return int(workers_.size());
}

void
WorkerPool::workerMain()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty())
            return;     // shutdown with a drained queue
        // priority_queue::top() is const; the closure is moved out
        // via const_cast, which is safe because pop() follows
        // immediately and nothing else reads the slot.
        std::function<void()> job =
            std::move(const_cast<QueuedJob &>(queue_.top()).fn);
        queue_.pop();
        ++inFlight_;
        lock.unlock();
        // The pool boundary is noexcept territory: a job that
        // throws must not std::terminate the process or wedge the
        // barrier. Keep the first escape for takeFirstError().
        std::exception_ptr escaped;
        try {
            job();
        } catch (...) {
            escaped = std::current_exception();
        }
        lock.lock();
        if (escaped && !firstError_)
            firstError_ = escaped;
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(WorkerPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([i, &fn] { fn(i); });
    pool.wait();
}

} // namespace vliw::engine
