#include "worker_pool.hh"

#include <algorithm>

namespace vliw::engine {

WorkerPool::WorkerPool(int threads)
{
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(std::size_t(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    workAvailable_.notify_one();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

void
WorkerPool::workerMain()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty())
            return;     // shutdown with a drained queue
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        lock.unlock();
        job();
        lock.lock();
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(WorkerPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([i, &fn] { fn(i); });
    pool.wait();
}

} // namespace vliw::engine
