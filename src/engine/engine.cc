#include "engine.hh"

#include "engine/worker_pool.hh"
#include "workloads/mediabench.hh"

namespace vliw::engine {

ExperimentEngine::ExperimentEngine(const EngineOptions &opts)
    : opts_(opts)
{
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<ExperimentResult> results(specs.size());

    WorkerPool pool(opts_.jobs);
    parallelFor(pool, specs.size(), [&](std::size_t i) {
        const ExperimentSpec &spec = specs[i];
        const BenchmarkSpec bench = makeBenchmark(spec.bench);
        const Toolchain chain(spec.arch.config, spec.opts);

        BenchmarkRun run;
        if (opts_.compileCache) {
            const CompileCache::Entry compiled =
                cache_.compile(spec.arch.config, spec.opts, bench);
            run = chain.simulateBenchmark(bench, *compiled);
        } else {
            run = chain.runBenchmark(bench);
        }
        results[i] = ExperimentResult{spec, std::move(run)};
    });
    return results;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const ExperimentGrid &grid)
{
    return run(grid.expand());
}

} // namespace vliw::engine
