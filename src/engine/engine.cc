#include "engine.hh"

#include <chrono>

#include "engine/worker_pool.hh"
#include "support/faultpoints.hh"
#include "workloads/mediabench.hh"

namespace vliw::engine {

namespace {

double
msSince(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
}

bool
tokenSet(const std::atomic<bool> *token)
{
    return token && token->load(std::memory_order_relaxed);
}

/** Mark @p result as stopped by cooperative cancellation. */
void
markCancelled(ExperimentResult &result, const char *phase)
{
    result.cancelled = true;
    result.error = std::string("cancelled ") + phase;
    result.datasetRuns.clear();
}

} // namespace

ExperimentResult
runExperiment(const ExperimentSpec &spec, CompileCache *cache,
              const RunHooks *hooks)
{
    ExperimentResult result;
    result.spec = spec;

    // Delay-only test seam, fired before the first cancellation
    // check so an injected slow cell still honours deadlines and
    // cancels cooperatively. Timing only — never results.
    faults::fire("engine.cell");

    // The effective cancellation token: the hooks' token when the
    // caller provided one, else whatever rode in on the spec's own
    // options (a direct library user may set that).
    const std::atomic<bool> *cancel =
        hooks && hooks->cancel ? hooks->cancel : spec.opts.cancel;

    if (tokenSet(cancel)) {
        markCancelled(result, "before compile");
        return result;
    }

    // Nothing here may throw across the pool boundary; anything a
    // bad user input can raise (CompileError from the scheduler, a
    // panic from a malformed custom workload) lands on this cell's
    // error slot instead of taking down the batch.
    try {
        // Grid expansion resolves the workload through the
        // registries; hand-built specs fall back to the built-in
        // suite lookup.
        std::shared_ptr<const BenchmarkSpec> workload = spec.workload;
        if (!workload) {
            workload = std::make_shared<const BenchmarkSpec>(
                makeBenchmark(spec.bench));
        }
        const BenchmarkSpec &bench = *workload;

        // The cancel token rides on the options so the scheduler's
        // II-retry loop sees it; compileKey ignores it, so cached
        // artifacts stay shared across differently-tokened jobs.
        ToolchainOptions opts = spec.opts;
        opts.cancel = cancel;
        const Toolchain chain(spec.arch.config, opts);

        const auto compile_start = std::chrono::steady_clock::now();
        CompileCache::Entry compiled;
        CompiledBenchmark local;
        // A shared compile can surface another job's cancellation:
        // when the cache owner for this key was cancelled mid-
        // compile, every waiter sees its CancelledError and the
        // failed slot is vacated. A cell whose *own* token is
        // clear simply retries (fresh owner, clear token).
        for (;;) {
            try {
                if (cache) {
                    compiled = cache->compile(spec.arch.config, opts,
                                              bench);
                } else {
                    local = chain.compileBenchmark(bench);
                }
                break;
            } catch (const CancelledError &) {
                if (tokenSet(cancel) || !cache) {
                    markCancelled(result, "during compile");
                    return result;
                }
            }
        }
        result.compileMs = msSince(compile_start);

        // Surface the exact solver's worst per-kernel outcome on
        // the result (and thus in CellCompiled events) before the
        // hook fires. Heuristic cells leave it empty.
        {
            auto rank = [](const std::string &s) {
                return s == "budget-exhausted" ? 3
                     : s == "feasible"         ? 2
                     : s == "proven"           ? 1 : 0;
            };
            const CompiledBenchmark &artifact =
                compiled ? *compiled : local;
            for (const CompiledLoopVersions &lv : artifact.loops) {
                if (rank(lv.primary.solverOutcome) >
                    rank(result.solverOutcome))
                    result.solverOutcome = lv.primary.solverOutcome;
                if (lv.unchained &&
                    rank(lv.unchained->solverOutcome) >
                        rank(result.solverOutcome))
                    result.solverOutcome =
                        lv.unchained->solverOutcome;
            }
        }

        if (hooks && hooks->compiled)
            hooks->compiled(result);
        if (tokenSet(cancel)) {
            markCancelled(result, "before simulate");
            return result;
        }

        // Simulation always goes through the batched entry point:
        // a one-entry batch is bit-identical to the classic
        // single-input simulateBenchmark() call.
        const std::vector<std::uint64_t> seeds =
            spec.execSeeds.empty()
                ? std::vector<std::uint64_t>{spec.opts.execSeed}
                : spec.execSeeds;
        const auto sim_start = std::chrono::steady_clock::now();
        result.datasetRuns = chain.simulateBatch(
            bench, compiled ? *compiled : local, seeds,
            &result.simulateDatasetMs, &result.simulateSetupMs);
        result.simulateMs = msSince(sim_start);
    } catch (const CompileError &e) {
        result.error = e.what();
        result.userError = true;
        result.datasetRuns.clear();
    } catch (const std::exception &e) {
        result.error = e.what();
        result.datasetRuns.clear();
    }
    return result;
}

ExperimentEngine::ExperimentEngine(const EngineOptions &opts)
    : opts_(opts), cache_(opts.cacheCapacity, opts.store)
{
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentSpec> &specs,
                      std::optional<int> jobsOverride)
{
    std::vector<ExperimentResult> results(specs.size());

    CompileCache *cache = opts_.compileCache ? &cache_ : nullptr;
    const auto runJob = [&](std::size_t i) {
        results[i] = runExperiment(specs[i], cache);
    };

    // With one worker the pool degenerates to serial FIFO anyway;
    // run inline and spare callers like Session::run() (a one-spec
    // batch per request) a thread spawn/join per call. Results are
    // identical either way -- that is the determinism contract.
    const int jobs = jobsOverride.value_or(opts_.jobs);
    if (jobs == 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runJob(i);
    } else {
        WorkerPool pool(jobs);
        parallelFor(pool, specs.size(), runJob);
    }
    return results;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const ExperimentGrid &grid,
                      std::optional<int> jobsOverride)
{
    return run(grid.expand(), jobsOverride);
}

} // namespace vliw::engine
