#include "engine.hh"

#include <chrono>

#include "engine/worker_pool.hh"
#include "workloads/mediabench.hh"

namespace vliw::engine {

namespace {

double
msSince(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
}

} // namespace

ExperimentEngine::ExperimentEngine(const EngineOptions &opts)
    : opts_(opts)
{
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentSpec> &specs,
                      std::optional<int> jobsOverride)
{
    std::vector<ExperimentResult> results(specs.size());

    const auto runJob = [&](std::size_t i) {
        const ExperimentSpec &spec = specs[i];
        ExperimentResult result;
        result.spec = spec;

        // Jobs must not throw across the pool boundary; anything a
        // bad user input can raise (CompileError from the
        // scheduler, a panic from a malformed custom workload)
        // lands on this job's error slot instead of taking down
        // the batch.
        try {
            // Grid expansion resolves the workload through the
            // registries; hand-built specs fall back to the
            // built-in suite lookup.
            std::shared_ptr<const BenchmarkSpec> workload =
                spec.workload;
            if (!workload) {
                workload = std::make_shared<const BenchmarkSpec>(
                    makeBenchmark(spec.bench));
            }
            const BenchmarkSpec &bench = *workload;
            const Toolchain chain(spec.arch.config, spec.opts);

            const auto compile_start =
                std::chrono::steady_clock::now();
            CompileCache::Entry compiled;
            CompiledBenchmark local;
            if (opts_.compileCache) {
                compiled =
                    cache_.compile(spec.arch.config, spec.opts,
                                   bench);
            } else {
                local = chain.compileBenchmark(bench);
            }
            result.compileMs = msSince(compile_start);

            // Simulation always goes through the batched entry
            // point: a one-entry batch is bit-identical to the
            // classic single-input simulateBenchmark() call.
            const std::vector<std::uint64_t> seeds =
                spec.execSeeds.empty()
                    ? std::vector<std::uint64_t>{spec.opts.execSeed}
                    : spec.execSeeds;
            const auto sim_start = std::chrono::steady_clock::now();
            result.datasetRuns = chain.simulateBatch(
                bench, compiled ? *compiled : local, seeds,
                &result.simulateDatasetMs, &result.simulateSetupMs);
            result.simulateMs = msSince(sim_start);
        } catch (const CompileError &e) {
            result.error = e.what();
            result.userError = true;
            result.datasetRuns.clear();
        } catch (const std::exception &e) {
            result.error = e.what();
            result.datasetRuns.clear();
        }

        results[i] = std::move(result);
    };

    // With one worker the pool degenerates to serial FIFO anyway;
    // run inline and spare callers like Session::run() (a one-spec
    // batch per request) a thread spawn/join per call. Results are
    // identical either way -- that is the determinism contract.
    const int jobs = jobsOverride.value_or(opts_.jobs);
    if (jobs == 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runJob(i);
    } else {
        WorkerPool pool(jobs);
        parallelFor(pool, specs.size(), runJob);
    }
    return results;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const ExperimentGrid &grid,
                      std::optional<int> jobsOverride)
{
    return run(grid.expand(), jobsOverride);
}

} // namespace vliw::engine
