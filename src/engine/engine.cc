#include "engine.hh"

#include <chrono>

#include "engine/worker_pool.hh"
#include "workloads/mediabench.hh"

namespace vliw::engine {

namespace {

double
msSince(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
}

} // namespace

ExperimentEngine::ExperimentEngine(const EngineOptions &opts)
    : opts_(opts)
{
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<ExperimentResult> results(specs.size());

    WorkerPool pool(opts_.jobs);
    parallelFor(pool, specs.size(), [&](std::size_t i) {
        const ExperimentSpec &spec = specs[i];
        const BenchmarkSpec bench = makeBenchmark(spec.bench);
        const Toolchain chain(spec.arch.config, spec.opts);

        ExperimentResult result;
        result.spec = spec;

        const auto compile_start = std::chrono::steady_clock::now();
        CompileCache::Entry compiled;
        CompiledBenchmark local;
        if (opts_.compileCache) {
            compiled =
                cache_.compile(spec.arch.config, spec.opts, bench);
        } else {
            local = chain.compileBenchmark(bench);
        }
        result.compileMs = msSince(compile_start);

        // Simulation always goes through the batched entry point:
        // a one-entry batch is bit-identical to the classic
        // single-input simulateBenchmark() call.
        const std::vector<std::uint64_t> seeds =
            spec.execSeeds.empty()
                ? std::vector<std::uint64_t>{spec.opts.execSeed}
                : spec.execSeeds;
        const auto sim_start = std::chrono::steady_clock::now();
        result.datasetRuns = chain.simulateBatch(
            bench, compiled ? *compiled : local, seeds,
            &result.simulateDatasetMs, &result.simulateSetupMs);
        result.simulateMs = msSince(sim_start);

        results[i] = std::move(result);
    });
    return results;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const ExperimentGrid &grid)
{
    return run(grid.expand());
}

} // namespace vliw::engine
