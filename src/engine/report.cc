#include "report.hh"

#include <ostream>

namespace vliw::engine {

namespace {

/** Minimal JSON string escaping (names here are ASCII anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

const char *
boolName(bool v)
{
    return v ? "true" : "false";
}

} // namespace

ReportRow
makeRow(const ExperimentResult &result)
{
    ReportRow row;
    row.bench = result.spec.bench;
    row.arch = result.spec.arch.name;
    row.heuristic = heuristicName(result.spec.opts.heuristic);
    row.unroll = unrollPolicyName(result.spec.opts.unroll);
    row.varAlignment = result.spec.opts.varAlignment;
    row.memChains = result.spec.opts.memChains;
    row.loopVersioning = result.spec.opts.loopVersioning;
    row.cycles = result.run.total.totalCycles;
    row.computeCycles = result.run.total.computeCycles();
    row.stallCycles = result.run.total.stallCycles;
    row.localHitRatio = result.run.total.localHitRatio();
    row.abHits = result.run.total.abHits;
    row.memAccesses = result.run.total.memAccesses;
    row.workloadBalance = result.run.workloadBalance;
    for (const LoopRun &lr : result.run.loops)
        row.copies += lr.copies;
    return row;
}

TextTable
sweepTable(const std::vector<ExperimentResult> &results)
{
    TextTable tab({"benchmark", "arch", "heuristic", "unroll",
                   "cycles", "compute", "stall", "local hits",
                   "ab hits", "copies"});
    for (const ExperimentResult &r : results) {
        const ReportRow row = makeRow(r);
        tab.newRow().cell(row.bench);
        tab.cell(row.arch);
        tab.cell(row.heuristic);
        tab.cell(row.unroll);
        tab.cell(row.cycles);
        tab.cell(row.computeCycles);
        tab.cell(row.stallCycles);
        tab.percentCell(row.localHitRatio);
        tab.cell(row.abHits);
        tab.cell(row.copies);
    }
    return tab;
}

void
writeCsv(std::ostream &os,
         const std::vector<ExperimentResult> &results)
{
    os << "benchmark,arch,heuristic,unroll,align,chains,versioning,"
          "cycles,compute,stall,local_hit_ratio,ab_hits,"
          "mem_accesses,workload_balance,copies\n";
    for (const ExperimentResult &r : results) {
        const ReportRow row = makeRow(r);
        os << row.bench << ',' << row.arch << ',' << row.heuristic
           << ',' << row.unroll << ',' << int(row.varAlignment)
           << ',' << int(row.memChains) << ','
           << int(row.loopVersioning) << ',' << row.cycles << ','
           << row.computeCycles << ',' << row.stallCycles << ','
           << row.localHitRatio << ',' << row.abHits << ','
           << row.memAccesses << ',' << row.workloadBalance << ','
           << row.copies << '\n';
    }
}

void
writeJson(std::ostream &os,
          const std::vector<ExperimentResult> &results,
          const CompileCacheStats *cache)
{
    os << "{\n  \"experiments\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ReportRow row = makeRow(results[i]);
        os << "    {\"benchmark\": \"" << jsonEscape(row.bench)
           << "\", \"arch\": \"" << jsonEscape(row.arch)
           << "\", \"heuristic\": \"" << jsonEscape(row.heuristic)
           << "\", \"unroll\": \"" << jsonEscape(row.unroll)
           << "\", \"align\": " << boolName(row.varAlignment)
           << ", \"chains\": " << boolName(row.memChains)
           << ", \"versioning\": " << boolName(row.loopVersioning)
           << ", \"cycles\": " << row.cycles
           << ", \"compute\": " << row.computeCycles
           << ", \"stall\": " << row.stallCycles
           << ", \"local_hit_ratio\": " << row.localHitRatio
           << ", \"ab_hits\": " << row.abHits
           << ", \"mem_accesses\": " << row.memAccesses
           << ", \"workload_balance\": " << row.workloadBalance
           << ", \"copies\": " << row.copies << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (cache) {
        os << ",\n  \"cache\": {\"hits\": " << cache->hits
           << ", \"misses\": " << cache->misses
           << ", \"hits_by_benchmark\": {";
        bool first = true;
        for (const auto &[bench, hits] : cache->hitsByBench) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(bench)
               << "\": " << hits;
            first = false;
        }
        os << "}}";
    }
    os << "\n}\n";
}

void
writeCacheSummary(std::ostream &os, const CompileCacheStats &stats)
{
    os << "compile cache: " << stats.hits << " hits, "
       << stats.misses << " misses\n";
    for (const auto &[bench, hits] : stats.hitsByBench) {
        auto it = stats.missesByBench.find(bench);
        const std::uint64_t misses =
            it == stats.missesByBench.end() ? 0 : it->second;
        os << "  " << bench << ": " << hits << " hits, " << misses
           << " misses\n";
    }
}

} // namespace vliw::engine
