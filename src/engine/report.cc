#include "report.hh"

#include <ostream>

#include "support/json.hh"
#include "support/logging.hh"

namespace vliw::engine {

namespace {

/** One shared escaper for every JSON writer in the tree. */
std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

const char *
boolName(bool v)
{
    return v ? "true" : "false";
}

/** Severity order of solver outcomes; empty (no solver) is least. */
int
solverRank(const std::string &outcome)
{
    if (outcome == "budget-exhausted")
        return 3;
    if (outcome == "feasible")
        return 2;
    if (outcome == "proven")
        return 1;
    return 0;
}

/** Worst solver outcome over the run's kernels ("" without one). */
std::string
worstSolverOutcome(const BenchmarkRun &run)
{
    std::string worst;
    for (const LoopRun &lr : run.loops) {
        if (solverRank(lr.solver) > solverRank(worst))
            worst = lr.solver;
    }
    return worst;
}

} // namespace

ReportRow
makeRow(const ExperimentResult &result)
{
    return makeRow(result, 0);
}

ReportRow
makeRow(const ExperimentResult &result, std::size_t dataset)
{
    vliw_assert(!result.datasetRuns.empty(),
                "report row over a result that never ran");
    const BenchmarkRun &run =
        dataset < result.datasetRuns.size()
            ? result.datasetRuns[dataset] : result.run();

    ReportRow row;
    row.bench = result.spec.bench;
    row.arch = result.spec.arch.name;
    row.heuristic = schedulerLabel(result.spec.opts);
    row.unroll = unrollPolicyName(result.spec.opts.unroll);
    row.varAlignment = result.spec.opts.varAlignment;
    row.memChains = result.spec.opts.memChains;
    row.loopVersioning = result.spec.opts.loopVersioning;
    row.dataset = int(dataset);
    row.cycles = run.total.totalCycles;
    row.computeCycles = run.total.computeCycles();
    row.stallCycles = run.total.stallCycles;
    row.localHitRatio = run.total.localHitRatio();
    row.abHits = run.total.abHits;
    row.memAccesses = run.total.memAccesses;
    row.workloadBalance = run.workloadBalance;
    for (const LoopRun &lr : run.loops)
        row.copies += lr.copies;
    row.solver = worstSolverOutcome(run);
    row.compileMs = result.compileMs;
    // A single-dataset job reports the whole simulate phase (the
    // pre-batch semantics); a multi-dataset row reports its own
    // data set's slice, with the shared setup surfaced separately
    // in the timing totals.
    row.simulateMs =
        result.simulateDatasetMs.size() > 1 &&
            dataset < result.simulateDatasetMs.size()
        ? result.simulateDatasetMs[dataset] : result.simulateMs;
    return row;
}

namespace {

/** Fixed-point milliseconds so table/CSV cells stay stable. */
std::string
msCell(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    return buf;
}

struct TimingTotals
{
    double compileMs = 0.0;
    double simulateMs = 0.0;
    /** Shared batch setup (decode + memory model), summed. */
    double simulateSetupMs = 0.0;
    /** Simulate wall time summed per batched data-set index. */
    std::vector<double> simulatePerDataset;
};

TimingTotals
timingTotals(const std::vector<ExperimentResult> &results)
{
    TimingTotals t;
    for (const ExperimentResult &r : results) {
        if (r.failed())
            continue;   // keep totals consistent with emitted rows
        t.compileMs += r.compileMs;
        t.simulateMs += r.simulateMs;
        t.simulateSetupMs += r.simulateSetupMs;
        if (r.simulateDatasetMs.size() > t.simulatePerDataset.size())
            t.simulatePerDataset.resize(r.simulateDatasetMs.size());
        for (std::size_t d = 0; d < r.simulateDatasetMs.size(); ++d)
            t.simulatePerDataset[d] += r.simulateDatasetMs[d];
    }
    return t;
}

/** True when any experiment batches more than one data set. */
bool
multiDataset(const std::vector<ExperimentResult> &results)
{
    for (const ExperimentResult &r : results) {
        if (r.datasetCount() > 1)
            return true;
    }
    return false;
}

/**
 * True when any successful experiment ran the exact solver. Like
 * multiDataset(), this gates a column so heuristic-only reports —
 * including every golden CSV from before the solver existed — stay
 * byte-identical.
 */
bool
anySolver(const std::vector<ExperimentResult> &results)
{
    for (const ExperimentResult &r : results) {
        if (r.failed())
            continue;
        for (const BenchmarkRun &run : r.datasetRuns) {
            if (!worstSolverOutcome(run).empty())
                return true;
        }
    }
    return false;
}

} // namespace

TextTable
sweepTable(const std::vector<ExperimentResult> &results, bool timing)
{
    const bool multi = multiDataset(results);
    const bool solver = anySolver(results);
    std::vector<std::string> headers = {
        "benchmark", "arch", "heuristic", "unroll"};
    if (multi)
        headers.push_back("dataset");
    for (const char *h : {"cycles", "compute", "stall", "local hits",
                          "ab hits", "copies"})
        headers.push_back(h);
    if (solver)
        headers.push_back("solver");
    if (timing) {
        headers.push_back("compile ms");
        headers.push_back("simulate ms");
    }
    TextTable tab(headers);
    for (const ExperimentResult &r : results) {
        if (r.failed())
            continue;   // no run to report; see ExperimentResult::error
        for (std::size_t d = 0; d < r.datasetCount(); ++d) {
            const ReportRow row = makeRow(r, d);
            tab.newRow().cell(row.bench);
            tab.cell(row.arch);
            tab.cell(row.heuristic);
            tab.cell(row.unroll);
            if (multi)
                tab.cell(std::int64_t(row.dataset));
            tab.cell(row.cycles);
            tab.cell(row.computeCycles);
            tab.cell(row.stallCycles);
            tab.percentCell(row.localHitRatio);
            tab.cell(row.abHits);
            tab.cell(row.copies);
            if (solver)
                tab.cell(row.solver);
            if (timing) {
                tab.cell(msCell(row.compileMs));
                tab.cell(msCell(row.simulateMs));
            }
        }
    }
    return tab;
}

void
writeCsv(std::ostream &os,
         const std::vector<ExperimentResult> &results, bool timing)
{
    const bool multi = multiDataset(results);
    const bool solver = anySolver(results);
    os << "benchmark,arch,heuristic,unroll,align,chains,versioning";
    if (multi)
        os << ",dataset";
    os << ",cycles,compute,stall,local_hit_ratio,ab_hits,"
          "mem_accesses,workload_balance,copies";
    if (solver)
        os << ",solver";
    if (timing)
        os << ",compile_ms,simulate_ms";
    os << '\n';
    for (const ExperimentResult &r : results) {
        if (r.failed())
            continue;
        for (std::size_t d = 0; d < r.datasetCount(); ++d) {
            const ReportRow row = makeRow(r, d);
            os << row.bench << ',' << row.arch << ','
               << row.heuristic << ',' << row.unroll << ','
               << int(row.varAlignment) << ',' << int(row.memChains)
               << ',' << int(row.loopVersioning);
            if (multi)
                os << ',' << row.dataset;
            os << ',' << row.cycles << ',' << row.computeCycles
               << ',' << row.stallCycles << ',' << row.localHitRatio
               << ',' << row.abHits << ',' << row.memAccesses << ','
               << row.workloadBalance << ',' << row.copies;
            if (solver)
                os << ',' << row.solver;
            if (timing) {
                os << ',' << msCell(row.compileMs) << ','
                   << msCell(row.simulateMs);
            }
            os << '\n';
        }
    }
}

void
writeJson(std::ostream &os,
          const std::vector<ExperimentResult> &results,
          const CompileCacheStats *cache, bool timing)
{
    const bool multi = multiDataset(results);
    const bool solver = anySolver(results);
    os << "{\n  \"experiments\": [";
    bool first_record = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].failed())
            continue;
        const std::size_t rows = results[i].datasetCount();
        for (std::size_t d = 0; d < rows; ++d) {
            const ReportRow row = makeRow(results[i], d);
            os << (first_record ? "\n" : ",\n");
            first_record = false;
            os << "    {\"benchmark\": \"" << jsonEscape(row.bench)
               << "\", \"arch\": \"" << jsonEscape(row.arch)
               << "\", \"heuristic\": \"" << jsonEscape(row.heuristic)
               << "\", \"unroll\": \"" << jsonEscape(row.unroll)
               << "\", \"align\": " << boolName(row.varAlignment)
               << ", \"chains\": " << boolName(row.memChains)
               << ", \"versioning\": " << boolName(row.loopVersioning);
            if (multi)
                os << ", \"dataset\": " << row.dataset;
            os << ", \"cycles\": " << row.cycles
               << ", \"compute\": " << row.computeCycles
               << ", \"stall\": " << row.stallCycles
               << ", \"local_hit_ratio\": " << row.localHitRatio
               << ", \"ab_hits\": " << row.abHits
               << ", \"mem_accesses\": " << row.memAccesses
               << ", \"workload_balance\": " << row.workloadBalance
               << ", \"copies\": " << row.copies;
            if (solver)
                os << ", \"solver\": \"" << jsonEscape(row.solver)
                   << "\"";
            if (timing) {
                os << ", \"compile_ms\": " << msCell(row.compileMs)
                   << ", \"simulate_ms\": " << msCell(row.simulateMs);
            }
            os << "}";
        }
    }
    os << "\n  ]";
    if (timing) {
        const TimingTotals totals = timingTotals(results);
        os << ",\n  \"timing\": {\"compile_ms\": "
           << msCell(totals.compileMs) << ", \"simulate_ms\": "
           << msCell(totals.simulateMs);
        if (totals.simulatePerDataset.size() > 1) {
            os << ", \"simulate_setup_ms\": "
               << msCell(totals.simulateSetupMs)
               << ", \"simulate_ms_by_dataset\": [";
            for (std::size_t d = 0;
                 d < totals.simulatePerDataset.size(); ++d) {
                os << (d ? ", " : "")
                   << msCell(totals.simulatePerDataset[d]);
            }
            os << "]";
        }
        os << "}";
    }
    if (cache) {
        os << ",\n  \"cache\": {\"hits\": " << cache->hits
           << ", \"misses\": " << cache->misses
           << ", \"store_hits\": " << cache->storeHits
           << ", \"store_misses\": " << cache->storeMisses
           << ", \"stores\": " << cache->stores
           << ", \"hits_by_benchmark\": {";
        bool first = true;
        for (const auto &[bench, hits] : cache->hitsByBench) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(bench)
               << "\": " << hits;
            first = false;
        }
        os << "}}";
    }
    os << "\n}\n";
}

void
writeCacheSummary(std::ostream &os, const CompileCacheStats &stats)
{
    os << "compile cache: " << stats.hits << " hits, "
       << stats.misses << " misses\n";
    // Only mention the persistent store when one was attached
    // (any counter nonzero), so memory-only runs keep the classic
    // two-line summary.
    if (stats.storeHits + stats.storeMisses + stats.stores > 0) {
        os << "persistent store: " << stats.storeHits << " hits, "
           << stats.storeMisses << " misses, " << stats.stores
           << " stored\n";
    }
    for (const auto &[bench, hits] : stats.hitsByBench) {
        auto it = stats.missesByBench.find(bench);
        const std::uint64_t misses =
            it == stats.missesByBench.end() ? 0 : it->second;
        os << "  " << bench << ": " << hits << " hits, " << misses
           << " misses\n";
    }
}

void
writeTimingSummary(std::ostream &os,
                   const std::vector<ExperimentResult> &results)
{
    const TimingTotals totals = timingTotals(results);
    os << "timing: compile " << msCell(totals.compileMs)
       << " ms, simulate " << msCell(totals.simulateMs)
       << " ms over " << results.size() << " jobs\n";
    if (totals.simulatePerDataset.size() > 1) {
        os << "timing: simulate per dataset batch: setup="
           << msCell(totals.simulateSetupMs) << " ms";
        for (std::size_t d = 0;
             d < totals.simulatePerDataset.size(); ++d) {
            os << ", d" << d << '='
               << msCell(totals.simulatePerDataset[d]) << " ms";
        }
        os << '\n';
    }
}

} // namespace vliw::engine
