#include "report.hh"

#include <ostream>

namespace vliw::engine {

namespace {

/** Minimal JSON string escaping (names here are ASCII anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

const char *
boolName(bool v)
{
    return v ? "true" : "false";
}

} // namespace

ReportRow
makeRow(const ExperimentResult &result)
{
    ReportRow row;
    row.bench = result.spec.bench;
    row.arch = result.spec.arch.name;
    row.heuristic = heuristicName(result.spec.opts.heuristic);
    row.unroll = unrollPolicyName(result.spec.opts.unroll);
    row.varAlignment = result.spec.opts.varAlignment;
    row.memChains = result.spec.opts.memChains;
    row.loopVersioning = result.spec.opts.loopVersioning;
    row.cycles = result.run.total.totalCycles;
    row.computeCycles = result.run.total.computeCycles();
    row.stallCycles = result.run.total.stallCycles;
    row.localHitRatio = result.run.total.localHitRatio();
    row.abHits = result.run.total.abHits;
    row.memAccesses = result.run.total.memAccesses;
    row.workloadBalance = result.run.workloadBalance;
    for (const LoopRun &lr : result.run.loops)
        row.copies += lr.copies;
    row.compileMs = result.compileMs;
    row.simulateMs = result.simulateMs;
    return row;
}

namespace {

/** Fixed-point milliseconds so table/CSV cells stay stable. */
std::string
msCell(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    return buf;
}

struct TimingTotals
{
    double compileMs = 0.0;
    double simulateMs = 0.0;
};

TimingTotals
timingTotals(const std::vector<ExperimentResult> &results)
{
    TimingTotals t;
    for (const ExperimentResult &r : results) {
        t.compileMs += r.compileMs;
        t.simulateMs += r.simulateMs;
    }
    return t;
}

} // namespace

TextTable
sweepTable(const std::vector<ExperimentResult> &results, bool timing)
{
    std::vector<std::string> headers = {
        "benchmark", "arch", "heuristic", "unroll", "cycles",
        "compute", "stall", "local hits", "ab hits", "copies"};
    if (timing) {
        headers.push_back("compile ms");
        headers.push_back("simulate ms");
    }
    TextTable tab(headers);
    for (const ExperimentResult &r : results) {
        const ReportRow row = makeRow(r);
        tab.newRow().cell(row.bench);
        tab.cell(row.arch);
        tab.cell(row.heuristic);
        tab.cell(row.unroll);
        tab.cell(row.cycles);
        tab.cell(row.computeCycles);
        tab.cell(row.stallCycles);
        tab.percentCell(row.localHitRatio);
        tab.cell(row.abHits);
        tab.cell(row.copies);
        if (timing) {
            tab.cell(msCell(row.compileMs));
            tab.cell(msCell(row.simulateMs));
        }
    }
    return tab;
}

void
writeCsv(std::ostream &os,
         const std::vector<ExperimentResult> &results, bool timing)
{
    os << "benchmark,arch,heuristic,unroll,align,chains,versioning,"
          "cycles,compute,stall,local_hit_ratio,ab_hits,"
          "mem_accesses,workload_balance,copies";
    if (timing)
        os << ",compile_ms,simulate_ms";
    os << '\n';
    for (const ExperimentResult &r : results) {
        const ReportRow row = makeRow(r);
        os << row.bench << ',' << row.arch << ',' << row.heuristic
           << ',' << row.unroll << ',' << int(row.varAlignment)
           << ',' << int(row.memChains) << ','
           << int(row.loopVersioning) << ',' << row.cycles << ','
           << row.computeCycles << ',' << row.stallCycles << ','
           << row.localHitRatio << ',' << row.abHits << ','
           << row.memAccesses << ',' << row.workloadBalance << ','
           << row.copies;
        if (timing) {
            os << ',' << msCell(row.compileMs) << ','
               << msCell(row.simulateMs);
        }
        os << '\n';
    }
}

void
writeJson(std::ostream &os,
          const std::vector<ExperimentResult> &results,
          const CompileCacheStats *cache, bool timing)
{
    os << "{\n  \"experiments\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ReportRow row = makeRow(results[i]);
        os << "    {\"benchmark\": \"" << jsonEscape(row.bench)
           << "\", \"arch\": \"" << jsonEscape(row.arch)
           << "\", \"heuristic\": \"" << jsonEscape(row.heuristic)
           << "\", \"unroll\": \"" << jsonEscape(row.unroll)
           << "\", \"align\": " << boolName(row.varAlignment)
           << ", \"chains\": " << boolName(row.memChains)
           << ", \"versioning\": " << boolName(row.loopVersioning)
           << ", \"cycles\": " << row.cycles
           << ", \"compute\": " << row.computeCycles
           << ", \"stall\": " << row.stallCycles
           << ", \"local_hit_ratio\": " << row.localHitRatio
           << ", \"ab_hits\": " << row.abHits
           << ", \"mem_accesses\": " << row.memAccesses
           << ", \"workload_balance\": " << row.workloadBalance
           << ", \"copies\": " << row.copies;
        if (timing) {
            os << ", \"compile_ms\": " << msCell(row.compileMs)
               << ", \"simulate_ms\": " << msCell(row.simulateMs);
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (timing) {
        const TimingTotals totals = timingTotals(results);
        os << ",\n  \"timing\": {\"compile_ms\": "
           << msCell(totals.compileMs) << ", \"simulate_ms\": "
           << msCell(totals.simulateMs) << "}";
    }
    if (cache) {
        os << ",\n  \"cache\": {\"hits\": " << cache->hits
           << ", \"misses\": " << cache->misses
           << ", \"hits_by_benchmark\": {";
        bool first = true;
        for (const auto &[bench, hits] : cache->hitsByBench) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(bench)
               << "\": " << hits;
            first = false;
        }
        os << "}}";
    }
    os << "\n}\n";
}

void
writeCacheSummary(std::ostream &os, const CompileCacheStats &stats)
{
    os << "compile cache: " << stats.hits << " hits, "
       << stats.misses << " misses\n";
    for (const auto &[bench, hits] : stats.hitsByBench) {
        auto it = stats.missesByBench.find(bench);
        const std::uint64_t misses =
            it == stats.missesByBench.end() ? 0 : it->second;
        os << "  " << bench << ": " << hits << " hits, " << misses
           << " misses\n";
    }
}

void
writeTimingSummary(std::ostream &os,
                   const std::vector<ExperimentResult> &results)
{
    const TimingTotals totals = timingTotals(results);
    os << "timing: compile " << msCell(totals.compileMs)
       << " ms, simulate " << msCell(totals.simulateMs)
       << " ms over " << results.size() << " jobs\n";
}

} // namespace vliw::engine
