/**
 * @file
 * Aggregation and serialisation of experiment batches: the existing
 * fixed-width table the single-run driver prints, CSV for plotting,
 * and JSON for downstream tooling. All three emit one record per
 * experiment with the same field set, plus optional compile-cache
 * accounting.
 */

#ifndef WIVLIW_ENGINE_REPORT_HH
#define WIVLIW_ENGINE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/compile_cache.hh"
#include "engine/experiment.hh"
#include "support/table.hh"

namespace vliw::engine {

/** The per-experiment, per-data-set record all formats share. */
struct ReportRow
{
    std::string bench;
    std::string arch;
    std::string heuristic;
    std::string unroll;
    bool varAlignment = true;
    bool memChains = true;
    bool loopVersioning = false;
    /** Index of the batched data set this row describes. */
    int dataset = 0;
    std::int64_t cycles = 0;
    std::int64_t computeCycles = 0;
    std::int64_t stallCycles = 0;
    double localHitRatio = 0.0;
    std::uint64_t abHits = 0;
    std::uint64_t memAccesses = 0;
    double workloadBalance = 0.0;
    /** Inter-cluster copies summed over the benchmark's kernels. */
    std::int64_t copies = 0;
    /**
     * Exact-solver outcome for this cell: the worst outcome over
     * the benchmark's kernels ("proven" < "feasible" <
     * "budget-exhausted"), empty for heuristic arms. The solver
     * column appears in the table/CSV/JSON only when some result
     * in the batch ran the solver, so heuristic-only reports stay
     * byte-identical to their pre-solver form.
     */
    std::string solver;
    /**
     * Per-row wall times (reported only with timing enabled).
     * simulateMs is the time of this row's data set alone; the
     * compile happened once per job, so compileMs repeats on every
     * row of a multi-dataset batch.
     */
    double compileMs = 0.0;
    double simulateMs = 0.0;
};

/** Flatten one result's primary data set into the shared record. */
ReportRow makeRow(const ExperimentResult &result);

/** Flatten one result's @p dataset into the shared record. */
ReportRow makeRow(const ExperimentResult &result, std::size_t dataset);

/**
 * Build the aligned text table over @p results. With @p timing,
 * two extra columns carry each job's compile/simulate wall time.
 */
TextTable sweepTable(const std::vector<ExperimentResult> &results,
                     bool timing = false);

/** CSV: header plus one line per experiment. */
void writeCsv(std::ostream &os,
              const std::vector<ExperimentResult> &results,
              bool timing = false);

/**
 * JSON: {"experiments": [...], "cache": {...}}; pass null stats to
 * omit the cache object. With @p timing each experiment carries
 * compile_ms/simulate_ms and a "timing" object holds the totals.
 */
void writeJson(std::ostream &os,
               const std::vector<ExperimentResult> &results,
               const CompileCacheStats *cache = nullptr,
               bool timing = false);

/** Human-readable cache summary (one line + per-bench detail). */
void writeCacheSummary(std::ostream &os,
                       const CompileCacheStats &stats);

/** One-line aggregate of compile/simulate wall time. */
void writeTimingSummary(std::ostream &os,
                        const std::vector<ExperimentResult> &results);

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_REPORT_HH
