/**
 * @file
 * Memoization of compileBenchmark() across experiments.
 *
 * The key is the compile-relevant subset of (MachineConfig,
 * ToolchainOptions, benchmark): everything the compiler actually
 * reads — cluster geometry, register buses, cache organisation and
 * latencies, heuristic, unrolling, alignment, chains, the PROFILE
 * seed — and nothing it does not: Attraction Buffer presence and
 * geometry (simulation hardware, unless abHints puts them in the
 * compiler's view), unified-cache ports, memory buses and the
 * next-level port count only shape execution. Consequently
 * `interleaved` and `interleaved-ab` (and any sweep over AB sizes,
 * port counts or bus counts) compile once and simulate many times,
 * which is where the bulk of a grid's CPU time goes.
 *
 * Concurrency: the first requester of a key compiles; concurrent
 * requesters of the same key block on a shared future instead of
 * duplicating the work, and count as hits. Entries are immutable
 * shared_ptr<const CompiledBenchmark>, safe to simulate from any
 * number of threads at once. A compile that throws (CompileError,
 * or CancelledError from the owner's cancellation token) reaches
 * every waiter but is then *removed* from the cache, so the next
 * requester — possibly an uncancelled job — compiles fresh instead
 * of replaying another job's failure.
 *
 * Capacity: an optional entry bound turns the memo into an LRU
 * cache for long-lived serving sessions; evictions only drop the
 * cache's own reference (in-flight simulations keep the artifact
 * alive through their shared_ptr) and are counted in the stats.
 *
 * Persistence: an optional PersistentCompileStore (the distributed
 * sweep fabric's content-addressed dist::CompileStore) backs the
 * in-memory memo. A key that misses in memory is first looked up
 * in the store (a store hit skips the compile entirely — this is
 * how a fleet of daemons shares compiles across processes and
 * restarts); a compile that ran publishes its artifact back to the
 * store. The store never affects results: a corrupt, stale or
 * missing entry is just a store miss.
 */

#ifndef WIVLIW_ENGINE_COMPILE_CACHE_HH
#define WIVLIW_ENGINE_COMPILE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/toolchain.hh"

namespace vliw::engine {

/**
 * The memo key: a printable encoding of every compile input. Two
 * (config, options, bench) triples with equal keys are guaranteed
 * to produce bit-identical CompiledBenchmark artifacts.
 */
std::string compileKey(const MachineConfig &cfg,
                       const ToolchainOptions &opts,
                       const std::string &bench);

/**
 * A persistent artifact store backing the in-memory memo across
 * processes (implemented by dist::CompileStore). Both calls run on
 * worker threads holding no cache locks; implementations must be
 * thread-safe and must NOT throw — any internal failure is a miss
 * (load) or a dropped publication (store), never an error the
 * compile pipeline sees.
 */
class PersistentCompileStore
{
  public:
    virtual ~PersistentCompileStore() = default;

    /** The artifact stored under @p key, or nullptr (miss). */
    virtual std::shared_ptr<const CompiledBenchmark>
    load(const std::string &key) noexcept = 0;

    /** Best-effort publication of a fresh compile. */
    virtual void store(const std::string &key,
                       const CompiledBenchmark &artifact) noexcept = 0;
};

/** Hit/miss/evict accounting, plus a per-benchmark breakdown. */
struct CompileCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Entries dropped to respect the capacity bound. */
    std::uint64_t evictions = 0;
    /**
     * Persistent-store accounting (all zero without a store). A
     * store hit is an in-memory miss served from disk, so it also
     * counts under `misses`; `stores` counts artifacts published
     * after a compile that actually ran.
     */
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t stores = 0;
    std::map<std::string, std::uint64_t> hitsByBench;
    std::map<std::string, std::uint64_t> missesByBench;
};

/** Thread-safe once-per-key compile memo with optional LRU bound. */
class CompileCache
{
  public:
    using Entry = std::shared_ptr<const CompiledBenchmark>;

    /**
     * @param capacity max resident entries; 0 = unbounded.
     * @param store    optional persistent backing store shared
     *                 across processes; null = memory only.
     */
    explicit CompileCache(
        std::size_t capacity = 0,
        std::shared_ptr<PersistentCompileStore> store = nullptr)
        : capacity_(capacity), store_(std::move(store))
    {
    }

    /**
     * Return the compiled form of @p bench under (@p cfg, @p opts),
     * compiling at most once per distinct key process-wide.
     */
    Entry compile(const MachineConfig &cfg,
                  const ToolchainOptions &opts,
                  const BenchmarkSpec &bench);

    /**
     * Counter snapshot. The scalar counters are atomics readable
     * while jobs run (a monitoring thread polling stats never
     * contends with, or tears against, the workers); the
     * per-benchmark maps are copied under the cache lock.
     */
    CompileCacheStats stats() const;

    /** Distinct compiled configurations currently held. */
    std::size_t size() const;

    std::size_t capacity() const { return capacity_; }

    const std::shared_ptr<PersistentCompileStore> &
    store() const
    {
        return store_;
    }

  private:
    /** One memoized compile and its recency-list position. */
    struct Slot
    {
        std::shared_future<Entry> future;
        std::list<std::string>::iterator lruIt;
        /** Insertion identity: a failing owner may only remove
         *  the slot it created, never a successor's re-compile
         *  that reused the key after an eviction. */
        std::uint64_t gen = 0;
    };

    /** Drop least-recently-used ready entries over capacity. */
    void enforceCapacityLocked(const std::string &keep);

    std::size_t capacity_;
    std::shared_ptr<PersistentCompileStore> store_;
    mutable std::mutex mu_;
    std::uint64_t nextGen_ = 0;
    std::unordered_map<std::string, Slot> entries_;
    /** Front = most recently used. */
    std::list<std::string> lru_;
    /** Scalar counters: atomic so stats() reads race-free against
     *  running jobs. Relaxed ordering — they are statistics, not
     *  synchronization. */
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> storeHits_{0};
    std::atomic<std::uint64_t> storeMisses_{0};
    std::atomic<std::uint64_t> stores_{0};
    /** Per-benchmark breakdowns, guarded by mu_. */
    std::map<std::string, std::uint64_t> hitsByBench_;
    std::map<std::string, std::uint64_t> missesByBench_;
};

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_COMPILE_CACHE_HH
