/**
 * @file
 * Memoization of compileBenchmark() across experiments.
 *
 * The key is the compile-relevant subset of (MachineConfig,
 * ToolchainOptions, benchmark): everything the compiler actually
 * reads — cluster geometry, register buses, cache organisation and
 * latencies, heuristic, unrolling, alignment, chains, the PROFILE
 * seed — and nothing it does not: Attraction Buffer presence and
 * geometry (simulation hardware, unless abHints puts them in the
 * compiler's view), unified-cache ports, memory buses and the
 * next-level port count only shape execution. Consequently
 * `interleaved` and `interleaved-ab` (and any sweep over AB sizes,
 * port counts or bus counts) compile once and simulate many times,
 * which is where the bulk of a grid's CPU time goes.
 *
 * Concurrency: the first requester of a key compiles; concurrent
 * requesters of the same key block on a shared future instead of
 * duplicating the work, and count as hits. Entries are immutable
 * shared_ptr<const CompiledBenchmark>, safe to simulate from any
 * number of threads at once.
 */

#ifndef WIVLIW_ENGINE_COMPILE_CACHE_HH
#define WIVLIW_ENGINE_COMPILE_CACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/toolchain.hh"

namespace vliw::engine {

/**
 * The memo key: a printable encoding of every compile input. Two
 * (config, options, bench) triples with equal keys are guaranteed
 * to produce bit-identical CompiledBenchmark artifacts.
 */
std::string compileKey(const MachineConfig &cfg,
                       const ToolchainOptions &opts,
                       const std::string &bench);

/** Hit/miss accounting, totals plus a per-benchmark breakdown. */
struct CompileCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::map<std::string, std::uint64_t> hitsByBench;
    std::map<std::string, std::uint64_t> missesByBench;
};

/** Thread-safe once-per-key compile memo. */
class CompileCache
{
  public:
    using Entry = std::shared_ptr<const CompiledBenchmark>;

    /**
     * Return the compiled form of @p bench under (@p cfg, @p opts),
     * compiling at most once per distinct key process-wide.
     */
    Entry compile(const MachineConfig &cfg,
                  const ToolchainOptions &opts,
                  const BenchmarkSpec &bench);

    CompileCacheStats stats() const;

    /** Distinct compiled configurations currently held. */
    std::size_t size() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<Entry>> entries_;
    CompileCacheStats stats_;
};

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_COMPILE_CACHE_HH
