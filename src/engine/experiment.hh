/**
 * @file
 * Experiment descriptions for the batch engine: a named machine
 * configuration (the paper's Table 2 points), a single experiment
 * (benchmark x architecture x toolchain options), and a declarative
 * grid whose expansion is the cross-product of its axes in a fixed,
 * documented order. The grid is what the paper's evaluation
 * (Figures 4-8, Table 1) actually is: every figure is one slice of
 * benchmarks x architectures x heuristics x unrolling policies.
 */

#ifndef WIVLIW_ENGINE_EXPERIMENT_HH
#define WIVLIW_ENGINE_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/registries.hh"
#include "core/toolchain.hh"
#include "machine/machine_config.hh"
#include "support/logging.hh"

namespace vliw::engine {

/** A machine configuration with the CLI name it goes by. */
struct ArchSpec
{
    std::string name;
    MachineConfig config;
};

/** The built-in architecture names, in report order. */
const std::vector<std::string> &archNames();

/**
 * Resolve an architecture through the built-in registry (exact
 * names and parametric keys like "interleaved:c8"); nullopt for
 * unknown names. Session-registered architectures resolve through
 * the session's own registries, not here.
 */
std::optional<ArchSpec> findArch(const std::string &name);

/** Like findArch(), but panics for unknown names. */
ArchSpec makeArch(const std::string &name);

/** Resolve a heuristic name through the built-in registry. */
std::optional<Heuristic> findHeuristic(const std::string &name);

/**
 * The scheduler column/label of a cell: the canonical budget key
 * for optimal-solver cells, heuristicName() otherwise.
 */
std::string schedulerLabel(const ToolchainOptions &opts);

/** Resolve an unroll-policy name through the built-in registry. */
std::optional<UnrollPolicy> findUnrollPolicy(const std::string &name);

/** One benchmark under one architecture with one option set. */
struct ExperimentSpec
{
    std::string bench;
    ArchSpec arch;
    ToolchainOptions opts;
    /**
     * Execution data sets this job simulates in one batch (see
     * Toolchain::simulateBatch). Empty means the single data set
     * identified by opts.execSeed -- the classic one-input run.
     */
    std::vector<std::uint64_t> execSeeds;
    /**
     * The resolved workload. Grid expansion fills this from the
     * workload registry (once per benchmark, shared across the
     * bench's cells, so custom session-registered workloads run
     * through the engine like any built-in). Null makes the engine
     * fall back to the built-in suite lookup by `bench` -- the
     * pre-registry behaviour hand-built specs rely on.
     */
    std::shared_ptr<const BenchmarkSpec> workload;

    /** Stable human-readable identity, unique within any grid. */
    std::string label() const;
};

/**
 * Declarative cross-product of experiment axes. Expansion order is
 * row-major over (bench, arch, heuristic, unroll, alignment,
 * chains, versioning), with the benchmark as the slowest axis so
 * all arch/option variants of one benchmark are adjacent — that
 * adjacency is what makes the compile cache effective even with a
 * bounded job queue.
 */
struct ExperimentGrid
{
    /** Benchmarks to run; empty means every registered workload. */
    std::vector<std::string> benches;
    /** Architectures; empty means every registered one. */
    std::vector<std::string> archs;
    /** Scheduler names resolved through the registry. */
    std::vector<std::string> heuristics{"ipbc"};
    /** Unroll-policy names resolved through the registry. */
    std::vector<std::string> unrolls{"selective"};
    std::vector<bool> alignment{true};
    std::vector<bool> chains{true};
    std::vector<bool> versioning{false};
    /**
     * Execution data sets per cell, batched within each job: seeds
     * derive from base.execSeed via datasetSeed(), so dataset 0 is
     * the classic single-input run and results for it are identical
     * whatever the batch size.
     */
    int datasets = 1;
    /** Seeds, profiling caps etc. shared by every cell. */
    ToolchainOptions base;
    /**
     * Registries every name axis resolves through; null means the
     * built-in set. `api::Session` points this at its own
     * registries so user-registered entries expand like built-ins.
     */
    const api::Registries *registries = nullptr;

    /** Number of experiments expand() will produce. */
    std::size_t size() const;

    /**
     * Materialise the cross-product. Unknown names panic -- the
     * façade validates every axis up front and reports
     * `api::Status` instead, so only direct library misuse gets
     * here.
     */
    std::vector<ExperimentSpec> expand() const;
};

/** Outcome of one experiment. */
struct ExperimentResult
{
    ExperimentSpec spec;
    /** One result per batched data set; size >= 1 once run. */
    std::vector<BenchmarkRun> datasetRuns;
    /**
     * Empty on success; otherwise the compile/simulate failure of
     * this job (e.g. a CompileError message). A failed job has no
     * datasetRuns; the engine keeps running the rest of the batch
     * and the façade turns any failure into an `api::Status`.
     */
    std::string error;
    /** True when `error` is user-addressable (a CompileError from
     *  the request), false for internal failures. */
    bool userError = false;
    /**
     * True when a cooperative cancellation stopped this cell
     * before it produced results (`error` says at which phase).
     * Cancelled cells are not failures of the request: the façade
     * maps them to StatusCode::Cancelled, and sibling cells that
     * did complete stay valid.
     */
    bool cancelled = false;
    /**
     * Worst exact-solver outcome over the benchmark's compiled
     * kernels ("proven" < "feasible" < "budget-exhausted"); empty
     * for heuristic cells. Filled right after the compile phase,
     * before the compiled hook fires, so event streams can report
     * it without waiting for simulation.
     */
    std::string solverOutcome;

    bool failed() const { return !error.empty(); }
    /**
     * Wall time of this job's compile and simulate phases. The
     * engine always measures them (the cost is two clock reads per
     * phase); reports only show them when asked (--timing). With
     * the compile cache enabled, a memoized compile reports the
     * cache-lookup time — the cost this job actually paid.
     * simulateMs covers the whole batch (kernel decode, memory
     * model construction and every data set); simulateSetupMs is
     * the shared decode/construction slice and simulateDatasetMs
     * one entry per data set, so setup + the per-dataset entries
     * account for the batch total.
     */
    double compileMs = 0.0;
    double simulateMs = 0.0;
    double simulateSetupMs = 0.0;
    std::vector<double> simulateDatasetMs;

    /** Result on the primary (first) data set. */
    const BenchmarkRun &
    run() const
    {
        vliw_assert(!datasetRuns.empty(),
                    "run() on an experiment that never ran");
        return datasetRuns.front();
    }

    std::size_t datasetCount() const { return datasetRuns.size(); }
};

} // namespace vliw::engine

#endif // WIVLIW_ENGINE_EXPERIMENT_HH
